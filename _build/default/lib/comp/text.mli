(** Textual program format: read and write {!Ir.program} values as
    S-expressions so experiments can be defined without OCaml (the
    CLI's [run-file] command).  See the module implementation or
    [examples/programs/] for the grammar. *)

exception Format_error of string

(** [of_sexp sx] converts one [(program ...)] form.  Raises
    {!Format_error} on semantic errors and validation errors from
    {!Ir.check_program} on invalid IR. *)
val of_sexp : Sexp.t -> Ir.program

(** [of_string s] parses a full program text ({!Sexp.Parse_error} /
    {!Format_error}). *)
val of_string : string -> Ir.program

(** [of_file path] reads and parses a program file. *)
val of_file : string -> Ir.program

(** [to_sexp p] converts a program to its textual form (array bases are
    not serialized; layout reassigns them on load). *)
val to_sexp : Ir.program -> Sexp.t

(** [to_string p] renders text that {!of_string} reads back to a
    structurally equal program. *)
val to_string : Ir.program -> string
