(** The compiler's intermediate representation: programs as phases of
    affine loop nests over multidimensional arrays — the slice of a
    SUIF-parallelized program that CDPC and the memory-system
    experiments consume. *)

(** A statically allocated array; [base] is assigned by the layout pass
    ({!Pcolor_cdpc.Align}), [-1] until then. *)
type array_decl = {
  id : int;
  aname : string;
  elem_size : int;  (** bytes per element, typically 8 *)
  dims : int array;  (** row-major, innermost last *)
  mutable base : int;
}

(** [elems a] / [bytes a] are total element and byte counts. *)
val elems : array_decl -> int

val bytes : array_decl -> int

(** [make_array ~id ~name ~elem_size ~dims] declares an array with an
    unassigned base.  Raises [Invalid_argument] on bad dims. *)
val make_array : id:int -> name:string -> elem_size:int -> dims:int array -> array_decl

(** An affine reference: element index =
    [offset + Σ_l coeffs.(l) · iv.(l)], coefficients in elements. *)
type ref_ = { array : array_decl; coeffs : int array; offset : int; is_write : bool }

(** [ref_to array ~coeffs ~offset ~write] builds a reference. *)
val ref_to : array_decl -> coeffs:int array -> offset:int -> write:bool -> ref_

(** How a nest executes across processors. *)
type loop_kind =
  | Parallel of { policy : Partition.policy; direction : Partition.direction }
      (** depth-0 loop distributed across all CPUs *)
  | Suppressed
      (** parallelizable but too fine-grained: master-only, slaves idle
          counted as suppressed time (§4.1) *)
  | Sequential  (** not parallelizable: master-only, sequential time *)

(** One perfect loop nest; every reference fires once per innermost
    iteration.  [extra_onchip_stall] models instruction-fetch stall
    (fpppp); [tiled] marks prefetch-hostile tiling (applu, §6.2). *)
type nest = {
  label : string;
  kind : loop_kind;
  bounds : int array;
  refs : ref_ list;
  body_instr : int;
  extra_onchip_stall : int;
  tiled : bool;
}

(** [make_nest ~label ~kind ~bounds ~refs ()] with optional cost knobs
    ([body_instr] defaults to 4). *)
val make_nest :
  ?body_instr:int ->
  ?extra_onchip_stall:int ->
  ?tiled:bool ->
  label:string ->
  kind:loop_kind ->
  bounds:int array ->
  refs:ref_ list ->
  unit ->
  nest

(** A phase: nests separated by barriers. *)
type phase = { pname : string; nests : nest list }

(** A whole program; [steady] lists [(phase index, occurrences)] in the
    steady state (§3.2). *)
type program = {
  name : string;
  arrays : array_decl list;
  phases : phase list;
  steady : (int * int) list;
  seq_startup_instr : int;
}

(** [check_nest n] / [check_program p] validate arity, bounds and
    steady-state indices; raise [Invalid_argument]. *)
val check_nest : nest -> unit

val check_program : program -> unit

(** [min_max_index r ~bounds ~lo0 ~hi0] is the inclusive element-index
    range the reference can produce when depth-0 spans [\[lo0, hi0)];
    [None] when empty. *)
val min_max_index : ref_ -> bounds:int array -> lo0:int -> hi0:int -> (int * int) option

(** [total_inner_iters nest] is the work per distributed iteration. *)
val total_inner_iters : nest -> int

(** [data_set_bytes p] sums all array sizes (Table 1's metric). *)
val data_set_bytes : program -> int
