(** Per-processor footprint analysis.

    For each (nest, CPU, array reference) the analysis computes the byte
    interval the reference can touch, from the scheduled depth-0 range
    and the affine bounds.  Footprints drive three consumers:

    - the CDPC segment computation (which CPUs touch which address
      ranges, §5.2 step 1);
    - the Figure 3/5 access-pattern plots;
    - density/locality metrics used by the prefetcher and by CDPC's
      applicability test (su2cor's non-contiguous structures, §6.1).

    Intervals are over-approximations for strided references (gaps inside
    a unit are included); [unit_density] quantifies exactly that gap. *)

type interval = { lo : int; hi : int } (* byte addresses, half-open *)

(** [norm intervals] sorts and coalesces overlapping/adjacent intervals. *)
let norm intervals =
  let sorted = List.sort (fun a b -> compare a.lo b.lo) intervals in
  let rec merge = function
    | a :: b :: rest when b.lo <= a.hi -> merge ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge (List.filter (fun i -> i.hi > i.lo) sorted)

(** [total_bytes intervals] sums the lengths of normalized intervals. *)
let total_bytes intervals = List.fold_left (fun acc i -> acc + (i.hi - i.lo)) 0 (norm intervals)

(** [ref_interval r ~bounds ~lo0 ~hi0] is the byte interval touched by
    reference [r] when depth-0 spans [\[lo0,hi0)]; [None] when empty or
    when the array has no assigned base address. *)
let ref_interval (r : Ir.ref_) ~bounds ~lo0 ~hi0 =
  if r.array.base < 0 then invalid_arg "Footprint.ref_interval: array base unassigned";
  match Ir.min_max_index r ~bounds ~lo0 ~hi0 with
  | None -> None
  | Some (lo_e, hi_e) ->
    Some
      {
        lo = r.array.base + (lo_e * r.array.elem_size);
        hi = r.array.base + ((hi_e + 1) * r.array.elem_size);
      }

(** [nest_cpu nest ~n_cpus ~cpu] is the normalized byte intervals CPU
    [cpu] touches executing its share of [nest]. *)
let nest_cpu (nest : Ir.nest) ~n_cpus ~cpu =
  let lo0, hi0 = Schedule.range nest ~n_cpus ~cpu in
  List.filter_map (fun r -> ref_interval r ~bounds:nest.bounds ~lo0 ~hi0) nest.refs |> norm

(** [program_cpu p ~n_cpus ~cpu] unions footprints over every nest of
    every steady-state phase. *)
let program_cpu (p : Ir.program) ~n_cpus ~cpu =
  let phases = Array.of_list p.phases in
  List.concat_map
    (fun (idx, _) -> List.concat_map (fun nest -> nest_cpu nest ~n_cpus ~cpu) phases.(idx).Ir.nests)
    p.steady
  |> norm

(** [pages_of intervals ~page_size] is the sorted list of virtual page
    numbers the intervals overlap. *)
let pages_of intervals ~page_size =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun i ->
      let p0 = i.lo / page_size and p1 = (i.hi - 1) / page_size in
      for p = p0 to p1 do
        Hashtbl.replace tbl p ()
      done)
    (norm intervals);
  Hashtbl.fold (fun p () acc -> p :: acc) tbl [] |> List.sort compare

(** [touch_points p ~n_cpus ~page_size] is the Figure 3 data: every
    [(vpage, cpu)] pair touched during the steady state. *)
let touch_points (p : Ir.program) ~n_cpus ~page_size =
  List.concat_map
    (fun cpu ->
      List.map (fun pg -> (pg, cpu)) (pages_of (program_cpu p ~n_cpus ~cpu) ~page_size))
    (List.init n_cpus Fun.id)

(** [inner_span nest r] is the number of elements reference [r] spans
    while depth-0 is fixed: [Σ_(l≥1) |coeff_l|·(bound_l − 1) + 1]. *)
let inner_span (nest : Ir.nest) (r : Ir.ref_) =
  let s = ref 1 in
  Array.iteri (fun l c -> if l > 0 then s := !s + (abs c * (nest.bounds.(l) - 1))) r.coeffs;
  !s

(** [unit_density nest r] is the fraction of a distributed unit (the
    [|coeffs.(0)|]-element block advanced per depth-0 iteration) the
    reference actually covers — 1.0 is fully dense, small values mean a
    strided access whose per-CPU pages are shared with other CPUs.
    References not distributed by depth-0 ([coeffs.(0) = 0]) report 1.0. *)
let unit_density (nest : Ir.nest) (r : Ir.ref_) =
  let c0 = abs r.coeffs.(0) in
  if c0 = 0 then 1.0 else Float.min 1.0 (float_of_int (inner_span nest r) /. float_of_int c0)

(** [page_dense nest r ~page_size] decides whether CDPC should color
    this reference's array based on this access: the per-unit gaps must
    be smaller than a page, otherwise per-CPU page ownership is not
    well-defined (su2cor's problematic structures).  Dense or
    undistributed references qualify trivially. *)
let page_dense (nest : Ir.nest) (r : Ir.ref_) ~page_size =
  let c0 = abs r.coeffs.(0) in
  if c0 = 0 then true
  else
    let gap_elems = c0 - inner_span nest r in
    gap_elems * r.array.elem_size < page_size
