(** A minimal S-expression reader/writer — the carrier syntax for the
    textual program format ({!Parse}).  No external dependencies; line
    and column tracking for error messages; comments run from [;] to end
    of line. *)

type t = Atom of string | List of t list

exception Parse_error of { line : int; col : int; msg : string }

let error ~line ~col msg = raise (Parse_error { line; col; msg })

(** [pp fmt t] prints with minimal quoting (atoms are written verbatim;
    the program format never needs spaces inside atoms). *)
let rec pp fmt = function
  | Atom s -> Format.pp_print_string fmt s
  | List items ->
    Format.fprintf fmt "@[<hov 1>(";
    List.iteri
      (fun i item ->
        if i > 0 then Format.fprintf fmt "@ ";
        pp fmt item)
      items;
    Format.fprintf fmt ")@]"

(** [to_string t] renders compactly. *)
let to_string t = Format.asprintf "%a" pp t

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_ws lx
  | _ -> ()

let is_atom_char = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false
  | _ -> true

let rec parse_one lx =
  skip_ws lx;
  match peek lx with
  | None -> error ~line:lx.line ~col:lx.col "unexpected end of input"
  | Some '(' ->
    advance lx;
    let items = ref [] in
    let rec loop () =
      skip_ws lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List (List.rev !items)
      | None -> error ~line:lx.line ~col:lx.col "unclosed parenthesis"
      | Some _ ->
        items := parse_one lx :: !items;
        loop ()
    in
    loop ()
  | Some ')' -> error ~line:lx.line ~col:lx.col "unexpected ')'"
  | Some _ ->
    let start = lx.pos in
    while (match peek lx with Some c when is_atom_char c -> true | _ -> false) do
      advance lx
    done;
    Atom (String.sub lx.src start (lx.pos - start))

(** [of_string s] parses exactly one S-expression, rejecting trailing
    garbage.  Raises {!Parse_error}. *)
let of_string s =
  let lx = { src = s; pos = 0; line = 1; col = 1 } in
  let v = parse_one lx in
  skip_ws lx;
  (match peek lx with
  | Some _ -> error ~line:lx.line ~col:lx.col "trailing input after expression"
  | None -> ());
  v

(** [of_string_many s] parses a sequence of top-level expressions. *)
let of_string_many s =
  let lx = { src = s; pos = 0; line = 1; col = 1 } in
  let items = ref [] in
  let rec loop () =
    skip_ws lx;
    match peek lx with
    | None -> List.rev !items
    | Some _ ->
      items := parse_one lx :: !items;
      loop ()
  in
  loop ()
