(** Compiler-inserted prefetching (§2.2, §6.2).

    Follows Mowry's selective scheme: locality analysis decides which
    references are likely to miss, and a software-pipelined prefetch is
    inserted far enough ahead to cover memory latency.  One prefetch is
    issued per cache line, not per element (the execution engine issues a
    plan's prefetch only when the reference crosses into a new line).

    The paper's applu observation is modeled: loop tiling inhibits
    software pipelining, so tiled nests get a too-short ahead distance —
    their prefetches arrive late and only partially hide latency; their
    large strides additionally make prefetches cross unmapped pages,
    where the hardware drops them (see
    {!Pcolor_memsim.Machine.prefetch}). *)

type ref_plan = {
  prefetch : bool;
  ahead_elems : int; (* added to the element index of the prefetch address *)
}

type nest_plan = ref_plan array (* parallel to the nest's ref list *)

type t = {
  plans : (string, nest_plan) Hashtbl.t; (* nest label -> plan *)
  mutable planned_refs : int;
  mutable covered_refs : int;
}

(* Locality analysis: does this reference need prefetching?  A
   loop-invariant reference is register-allocated; otherwise the
   reference streams through its array, and it will keep missing unless
   the whole array fits in the on-chip cache across reuses — the
   classic test from Mowry's selective-prefetching analysis. *)
let needs_prefetch (cfg : Pcolor_memsim.Config.t) (nest : Ir.nest) (r : Ir.ref_) =
  let depth = Array.length nest.bounds in
  let innermost_stride = abs r.coeffs.(depth - 1) * r.array.elem_size in
  innermost_stride > 0 && Ir.bytes r.array > cfg.l1.size

(* Ahead distance: latency / per-iteration work, expressed in elements of
   the innermost dimension, then rounded up to cover at least one line. *)
let ahead_distance (cfg : Pcolor_memsim.Config.t) (nest : Ir.nest) (r : Ir.ref_) =
  let per_iter_cycles = max 1 (nest.body_instr + (2 * List.length nest.refs)) in
  let iters_ahead = Pcolor_util.Bits.ceil_div cfg.mem_cycles per_iter_cycles in
  let iters_ahead = if nest.tiled then max 1 (iters_ahead / 16) else iters_ahead in
  let depth = Array.length nest.bounds in
  let innermost_coeff = max 1 (abs r.coeffs.(depth - 1)) in
  let min_elems = 2 * cfg.l2.line / r.array.elem_size in
  let d = iters_ahead * innermost_coeff in
  if nest.tiled then d else max d min_elems

(** [plan_nest cfg nest] computes the per-reference prefetch plan for one
    nest. *)
let plan_nest cfg (nest : Ir.nest) : nest_plan =
  Array.of_list
    (List.map
       (fun r ->
         if needs_prefetch cfg nest r then
           { prefetch = true; ahead_elems = ahead_distance cfg nest r }
         else { prefetch = false; ahead_elems = 0 })
       nest.refs)

(** [plan cfg p] runs the prefetch pass over the whole program, keyed by
    nest label (labels must be unique per program; {!find} falls back to
    "no prefetching" for unknown labels). *)
let plan cfg (p : Ir.program) =
  let t = { plans = Hashtbl.create 64; planned_refs = 0; covered_refs = 0 } in
  List.iter
    (fun (ph : Ir.phase) ->
      List.iter
        (fun (nest : Ir.nest) ->
          let np = plan_nest cfg nest in
          Array.iter
            (fun rp ->
              t.planned_refs <- t.planned_refs + 1;
              if rp.prefetch then t.covered_refs <- t.covered_refs + 1)
            np;
          Hashtbl.replace t.plans nest.label np)
        ph.nests)
    p.phases;
  t

(** [none] is the empty plan — runs without prefetching. *)
let none = { plans = Hashtbl.create 1; planned_refs = 0; covered_refs = 0 }

(** [find t nest] is the plan for [nest]; references map to "no
    prefetch" when the nest was never planned. *)
let find t (nest : Ir.nest) =
  match Hashtbl.find_opt t.plans nest.label with
  | Some p -> p
  | None -> Array.make (List.length nest.refs) { prefetch = false; ahead_elems = 0 }

(** [coverage t] is [(covered, total)] reference counts — how selective
    the locality analysis was. *)
let coverage t = (t.covered_refs, t.planned_refs)
