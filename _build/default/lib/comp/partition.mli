(** Iteration-space partitioning policies (§5.1): {e even} (as close to
    N/p as possible, consecutive) and {e blocked} (⌈N/p⌉ each, last
    possibly empty), in {e forward} (processor 0 upward) or {e reverse}
    (processor p−1 downward) assignment order. *)

type policy = Even | Blocked

type direction = Forward | Reverse

(** [to_string policy direction] is a compact label like "even/fwd". *)
val to_string : policy -> direction -> string

(** [range policy direction ~n_cpus ~cpu ~trip] is the half-open
    iteration interval assigned to [cpu]; intervals over all CPUs tile
    [\[0, trip)].  Raises [Invalid_argument] on bad inputs. *)
val range : policy -> direction -> n_cpus:int -> cpu:int -> trip:int -> int * int

(** [owner policy direction ~n_cpus ~trip iter] is the CPU executing
    iteration [iter] — the inverse of {!range}. *)
val owner : policy -> direction -> n_cpus:int -> trip:int -> int -> int

(** [imbalance policy ~n_cpus ~trip] is the max−min per-CPU iteration
    count (applu's 33-iteration loops, §4.1). *)
val imbalance : policy -> n_cpus:int -> trip:int -> int
