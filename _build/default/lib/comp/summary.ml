(** Access-pattern summaries — the information the compiler hands to the
    CDPC run-time library (§5.1).

    Three kinds of information are extracted from the program:

    - {b array partitioning}: per (array, pattern) — starting address,
      total size, the data-partition unit (the data operated on by one
      iteration of the parallel loop) and the partitioning policy;
    - {b communication patterns}: shift/rotate of boundary data between
      neighboring processors, derived from stencil offsets that cross
      distributed-unit boundaries;
    - {b group access information}: pairs of arrays accessed within the
      same loops.

    The summaries are what a real SUIF pass would emit as run-time
    library calls; dimensions and processor counts stay symbolic until
    run time, which is why {!extract} is parameterized by nothing and
    the CDPC hint generator is parameterized by the machine. *)

type array_partition = {
  array : Ir.array_decl;
  unit_elems : int; (* |coeffs.(0)| — elements advanced per distributed iteration *)
  trip : int; (* distributed trip count *)
  policy : Partition.policy;
  direction : Partition.direction;
  page_dense : bool; (* CDPC applicability: per-unit gaps smaller than a page *)
  weight : int; (* steady-state occurrences of the source phase *)
}

type communication = Shift of { units : int } | Rotate of { units : int }

type comm_info = { carray : Ir.array_decl; comm : communication; cweight : int }

type t = {
  partitions : array_partition list;
  comms : comm_info list;
  groups : (int * int) list; (* unordered array-id pairs co-accessed in a nest *)
  arrays : Ir.array_decl list;
}

let canon_pair a b = if a < b then (a, b) else (b, a)

(* Detect boundary communication per (nest, array): a stencil that
   displaces the same array by different whole distributed units (e.g.
   A[i-1][j] and A[i+1][j] with unit = row) reads data owned by
   neighboring CPUs.  The halo width is the spread of the rounded
   unit-offsets across the nest's references — a single reference, or
   references differing only within a unit, communicate nothing. *)
let comm_of_nest_array (refs : Ir.ref_ list) =
  let unit_offsets =
    List.filter_map
      (fun (r : Ir.ref_) ->
        let c0 = r.coeffs.(0) in
        if c0 = 0 then None
        else
          let c0 = abs c0 in
          (* round to the nearest whole unit *)
          Some ((r.offset + (c0 / 2)) / c0))
      refs
  in
  match unit_offsets with
  | [] -> None
  | o :: rest ->
    let lo = List.fold_left min o rest and hi = List.fold_left max o rest in
    if hi > lo then Some (Shift { units = hi - lo }) else None

(** [extract ?page_size p] analyzes the steady state of [p].  Only
    parallel nests generate partitions and communication; every nest
    (including sequential ones) contributes group-access pairs.
    [page_size] (default 4096) feeds the page-density applicability
    test. *)
let extract ?(page_size = 4096) (p : Ir.program) =
  Ir.check_program p;
  let phases = Array.of_list p.phases in
  let partitions = ref [] in
  let comms = ref [] in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (phase_idx, weight) ->
      List.iter
        (fun (nest : Ir.nest) ->
          (* group access: all unordered pairs of distinct arrays in the nest *)
          let ids = List.sort_uniq compare (List.map (fun r -> r.Ir.array.id) nest.refs) in
          List.iteri
            (fun i a -> List.iteri (fun j b -> if j > i then Hashtbl.replace groups (canon_pair a b) ()) ids)
            ids;
          match nest.kind with
          | Ir.Sequential | Ir.Suppressed -> ()
          | Ir.Parallel { policy; direction } ->
            List.iter
              (fun (r : Ir.ref_) ->
                if r.coeffs.(0) <> 0 then begin
                  let part =
                    {
                      array = r.array;
                      unit_elems = abs r.coeffs.(0);
                      trip = nest.bounds.(0);
                      policy;
                      direction;
                      page_dense = Footprint.page_dense nest r ~page_size;
                      weight;
                    }
                  in
                  (* dedupe identical patterns, accumulating weight *)
                  let same q =
                    q.array.id = part.array.id && q.unit_elems = part.unit_elems
                    && q.trip = part.trip && q.policy = part.policy
                    && q.direction = part.direction && q.page_dense = part.page_dense
                  in
                  match List.find_opt same !partitions with
                  | Some q ->
                    partitions :=
                      { q with weight = q.weight + weight }
                      :: List.filter (fun x -> not (same x)) !partitions
                  | None -> partitions := part :: !partitions
                end)
              nest.refs;
            (* boundary communication, per array referenced in the nest *)
            let arr_ids = List.sort_uniq compare (List.map (fun r -> r.Ir.array.id) nest.refs) in
            List.iter
              (fun aid ->
                let arefs = List.filter (fun r -> r.Ir.array.id = aid) nest.refs in
                match comm_of_nest_array arefs with
                | Some comm ->
                  let carray = (List.hd arefs).Ir.array in
                  if
                    not
                      (List.exists (fun c -> c.carray.Ir.id = aid && c.comm = comm) !comms)
                  then comms := { carray; comm; cweight = weight } :: !comms
                | None -> ())
              arr_ids)
        phases.(phase_idx).Ir.nests)
    p.steady;
  {
    partitions = List.rev !partitions;
    comms = List.rev !comms;
    groups = Hashtbl.fold (fun pair () acc -> pair :: acc) groups [] |> List.sort compare;
    arrays = p.arrays;
  }

(** [partitions_of t array_id] lists the (possibly overlapping) partition
    patterns recorded for one array. *)
let partitions_of t array_id = List.filter (fun p -> p.array.Ir.id = array_id) t.partitions

(** [grouped t a b] tests whether arrays [a] and [b] are co-accessed. *)
let grouped t a b = List.mem (canon_pair a b) t.groups

(** [colorable t array_id] is CDPC's applicability verdict for an array:
    it must have at least one partition pattern and every pattern must be
    page-dense (§6.1's su2cor caveat). *)
let colorable t array_id =
  match partitions_of t array_id with
  | [] -> false
  | ps -> List.for_all (fun p -> p.page_dense) ps

(** [dominant_partition t array_id] is the highest-weight pattern — the
    one the hint generator lays segments out for. *)
let dominant_partition t array_id =
  match partitions_of t array_id with
  | [] -> None
  | ps -> Some (List.fold_left (fun best p -> if p.weight > best.weight then p else best) (List.hd ps) ps)

(** [pp fmt t] prints a human-readable summary (used by the CLI and the
    walkthrough example). *)
let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "partitions:@,";
  List.iter
    (fun p ->
      Format.fprintf fmt "  %s: unit=%d elems, trip=%d, %s, dense=%b, weight=%d@," p.array.Ir.aname
        p.unit_elems p.trip
        (Partition.to_string p.policy p.direction)
        p.page_dense p.weight)
    t.partitions;
  Format.fprintf fmt "communication:@,";
  List.iter
    (fun c ->
      match c.comm with
      | Shift { units } -> Format.fprintf fmt "  %s: shift %d unit(s)@," c.carray.Ir.aname units
      | Rotate { units } -> Format.fprintf fmt "  %s: rotate %d unit(s)@," c.carray.Ir.aname units)
    t.comms;
  Format.fprintf fmt "groups: ";
  List.iter (fun (a, b) -> Format.fprintf fmt "(%d,%d) " a b) t.groups;
  Format.fprintf fmt "@]"
