(** Per-processor footprint analysis: the byte intervals each CPU's
    share of each nest can touch.  Drives the CDPC segment computation
    (§5.2 step 1), the Figure 3/5 plots, and the density tests behind
    CDPC's applicability rule (§6.1's su2cor caveat).  Intervals
    over-approximate strided references; {!unit_density} quantifies the
    gap. *)

type interval = { lo : int; hi : int }  (** byte addresses, half-open *)

(** [norm ivs] sorts and coalesces overlapping/adjacent intervals. *)
val norm : interval list -> interval list

(** [total_bytes ivs] sums normalized lengths. *)
val total_bytes : interval list -> int

(** [ref_interval r ~bounds ~lo0 ~hi0] is the byte interval reference
    [r] touches when depth-0 spans [\[lo0, hi0)]; [None] when empty.
    Raises [Invalid_argument] on an unassigned array base. *)
val ref_interval : Ir.ref_ -> bounds:int array -> lo0:int -> hi0:int -> interval option

(** [nest_cpu nest ~n_cpus ~cpu] is the CPU's normalized footprint for
    one nest. *)
val nest_cpu : Ir.nest -> n_cpus:int -> cpu:int -> interval list

(** [program_cpu p ~n_cpus ~cpu] unions footprints over the steady
    state. *)
val program_cpu : Ir.program -> n_cpus:int -> cpu:int -> interval list

(** [pages_of ivs ~page_size] is the sorted virtual pages overlapped. *)
val pages_of : interval list -> page_size:int -> int list

(** [touch_points p ~n_cpus ~page_size] is the Figure 3 data: every
    (vpage, cpu) pair touched in the steady state. *)
val touch_points : Ir.program -> n_cpus:int -> page_size:int -> (int * int) list

(** [inner_span nest r] is the elements the reference spans at fixed
    depth-0. *)
val inner_span : Ir.nest -> Ir.ref_ -> int

(** [unit_density nest r] is the covered fraction of a distributed
    unit, 1.0 when fully dense or undistributed. *)
val unit_density : Ir.nest -> Ir.ref_ -> float

(** [page_dense nest r ~page_size] is CDPC's applicability test:
    per-unit gaps must be smaller than a page. *)
val page_dense : Ir.nest -> Ir.ref_ -> page_size:int -> bool
