(** Static scheduling: which depth-0 iterations each CPU executes.
    Parallel nests apply their partition; suppressed and sequential
    nests run entirely on the master. *)

(** [master] is the CPU executing non-parallel work (0). *)
val master : int

(** [range nest ~n_cpus ~cpu] is the half-open depth-0 interval CPU
    [cpu] executes. *)
val range : Ir.nest -> n_cpus:int -> cpu:int -> int * int

(** [iters nest ~n_cpus ~cpu] is the CPU's iteration count. *)
val iters : Ir.nest -> n_cpus:int -> cpu:int -> int

(** [is_parallel nest] discriminates nests that run on all CPUs. *)
val is_parallel : Ir.nest -> bool

(** [validate_coverage nest ~n_cpus] checks the per-CPU ranges tile
    [\[0, trip)] exactly. *)
val validate_coverage : Ir.nest -> n_cpus:int -> bool
