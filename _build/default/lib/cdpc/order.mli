(** Steps 2 and 3 of the CDPC algorithm: ordering the uniform access
    sets, and ordering the segments within each set (§5.2).

    Both are greedy path heuristics over undirected graphs: step 2's
    nodes are processor-set masks with edges between intersecting sets
    (so pages shared by CPUs 0 and 1 land between pages private to each,
    Figure 4b); step 3's nodes are segments with edges from the
    compiler's group-access information, ties broken toward the smallest
    virtual address. *)

(** [order_sets masks] orders the distinct processor-set masks.  The
    result is a permutation of [List.sort_uniq compare masks] and is
    deterministic. *)
val order_sets : int list -> int list

(** [order_segments ~grouped segs] orders one access set's segments;
    [grouped a b] is the group-access relation on array ids. *)
val order_segments : grouped:(int -> int -> bool) -> Segment.t list -> Segment.t list
