(** Step 4 of the CDPC algorithm: cyclic page assignment within a
    segment (§5.2).

    Pages inside a segment are not laid down in ascending virtual order;
    instead a starting point is chosen and pages wrap around the segment
    boundary.  The starting points are picked to space out the {e start
    colors} of conflicting segments across the color range.  Two
    segments may conflict when (1) their arrays are used together in the
    same loop, (2) their processor sets intersect, and (3) they partially
    overlap in the cache.  In Figure 4(c) this moves the second data
    structure's start page off the first structure's color. *)

type seg_info = {
  pos : int; (* first position (page-ordering index) of the segment *)
  len : int; (* pages *)
  cpus : int; (* processor-set bitmask *)
  arr : int; (* array id, for the group-access test *)
}

(* Circular interval overlap in color space: does [a, a+la) intersect
   [b, b+lb) modulo c? Full-circle intervals overlap everything. *)
let circular_overlap ~c a la b lb =
  if la >= c || lb >= c then true
  else
    let a = a mod c and b = b mod c in
    let d = (b - a + c) mod c in
    d < la || (a - b + c) mod c < lb

let circular_distance ~c a b =
  let d = abs (a - b) mod c in
  min d (c - d)

(* The color of the segment's first virtual page under rotation [r]:
   page j gets position pos + ((j - r + len) mod len), so page 0 sits at
   pos + ((len - r) mod len). *)
let start_color ~n_colors s r = (s.pos + ((s.len - r) mod s.len)) mod n_colors

(** [conflicts ~grouped ~n_colors a b] tests the paper's three-part
    conflict condition on two segments. *)
let conflicts ~grouped ~n_colors a b =
  (a.arr = b.arr || grouped a.arr b.arr)
  && a.cpus land b.cpus <> 0
  && circular_overlap ~c:n_colors (a.pos mod n_colors) (min a.len n_colors) (b.pos mod n_colors)
       (min b.len n_colors)

(** [rotations ~n_colors ~grouped segs] chooses a rotation for every
    segment, processing them in order.  Each segment's rotation
    maximizes the minimum circular color distance between its start
    color and the start colors of already-placed conflicting segments;
    ties prefer the smallest rotation (so unconflicted segments keep
    rotation 0 and ascending-page layout). *)
let rotations ~n_colors ~grouped (segs : seg_info array) =
  let n = Array.length segs in
  let rot = Array.make n 0 in
  let starts = Array.make n 0 in
  for i = 0 to n - 1 do
    let s = segs.(i) in
    let prior = ref [] in
    for j = 0 to i - 1 do
      if conflicts ~grouped ~n_colors s segs.(j) then prior := starts.(j) :: !prior
    done;
    (match !prior with
    | [] -> rot.(i) <- 0
    | prior_starts ->
      let best_r = ref 0 and best_d = ref (-1) in
      let candidates = min s.len n_colors in
      for r = 0 to candidates - 1 do
        let sc = start_color ~n_colors s r in
        let d = List.fold_left (fun acc p -> min acc (circular_distance ~c:n_colors sc p)) max_int prior_starts in
        if d > !best_d then begin
          best_d := d;
          best_r := r
        end
      done;
      rot.(i) <- !best_r);
    starts.(i) <- start_color ~n_colors s rot.(i)
  done;
  rot

(** [position ~seg ~rotation j] is the global position of the segment's
    [j]-th page under the chosen rotation. *)
let position ~seg ~rotation j =
  if j < 0 || j >= seg.len then invalid_arg "Cyclic.position";
  seg.pos + ((j - rotation + seg.len) mod seg.len)
