(** Step 4 of the CDPC algorithm: cyclic page assignment within a
    segment (§5.2).

    A rotation start point is chosen per segment so that the start
    colors of conflicting segments — co-used arrays with intersecting
    processor sets that partially overlap in the cache — are spaced
    apart (Figure 4c). *)

type seg_info = {
  pos : int;  (** first position (page-ordering index) of the segment *)
  len : int;  (** pages *)
  cpus : int;  (** processor-set bitmask *)
  arr : int;  (** array id, for the group-access test *)
}

(** [circular_overlap ~c a la b lb] tests whether the circular intervals
    [[a, a+la)] and [[b, b+lb)] intersect modulo [c]. *)
val circular_overlap : c:int -> int -> int -> int -> int -> bool

(** [circular_distance ~c a b] is the circular distance between colors. *)
val circular_distance : c:int -> int -> int -> int

(** [start_color ~n_colors seg r] is the color of the segment's first
    virtual page under rotation [r]. *)
val start_color : n_colors:int -> seg_info -> int -> int

(** [conflicts ~grouped ~n_colors a b] is the paper's three-part
    conflict test between two segments. *)
val conflicts : grouped:(int -> int -> bool) -> n_colors:int -> seg_info -> seg_info -> bool

(** [rotations ~n_colors ~grouped segs] chooses every segment's
    rotation, processing segments in order and maximizing the minimum
    circular distance to already-placed conflicting segments' start
    colors; unconflicted segments keep rotation 0. *)
val rotations : n_colors:int -> grouped:(int -> int -> bool) -> seg_info array -> int array

(** [position ~seg ~rotation j] is the global position of the segment's
    [j]-th page under the rotation.  Raises [Invalid_argument] when [j]
    is outside the segment. *)
val position : seg:seg_info -> rotation:int -> int -> int
