(** Step 1 of the CDPC algorithm: maximal uniform access segments
    (§5.2).

    A segment is a contiguous virtual byte range within one array
    together with the processor set (bitmask) of CPUs that access it
    during the steady state.  Segments are computed by sweeping each
    colorable array's per-CPU footprint intervals; arrays whose
    partitioning is not page-dense are excluded — CDPC "is only applied
    to the remaining data structures" (§6.1). *)

type t = {
  seg_id : int;
  array : Pcolor_comp.Ir.array_decl;
  lo : int;  (** byte VA, inclusive *)
  hi : int;  (** byte VA, exclusive *)
  cpus : int;  (** processor-set bitmask; never 0 *)
}

(** [bytes s] is the segment length in bytes. *)
val bytes : t -> int

(** [pages s ~page_size] is the inclusive page range the segment
    overlaps. *)
val pages : t -> page_size:int -> int * int

type result = {
  segments : t list;  (** ascending by (array VA, lo) *)
  excluded : Pcolor_comp.Ir.array_decl list;  (** arrays CDPC declined to color *)
}

(** [compute ~summary ~program ~n_cpus] produces the uniform access
    segments of every colorable array and the excluded-array list.
    Raises [Invalid_argument] if array bases are unassigned (run
    {!Align.layout} first). *)
val compute :
  summary:Pcolor_comp.Summary.t -> program:Pcolor_comp.Ir.program -> n_cpus:int -> result

(** [coalesce segs] merges adjacent same-array segments with equal
    processor sets. *)
val coalesce : t list -> t list

(** [total_bytes segs] sums segment lengths. *)
val total_bytes : t list -> int

(** [pp fmt s] prints one segment for diagnostics. *)
val pp : Format.formatter -> t -> unit
