(** Data-structure layout: alignment and inter-array padding (§5.4).

    Page mapping cannot fix conflicts in the virtually-indexed on-chip
    cache nor false sharing between adjacent structures; SUIF therefore
    aligns every structure to a cache-line boundary and pads between
    co-used structures so their starting addresses differ in the on-chip
    cache. *)

type mode =
  | Natural  (** 8-byte packing, no padding — Figure 9's "unaligned" baseline *)
  | Aligned  (** line-aligned with group-aware line-granular padding *)

(** Default start address of the data segment. *)
val default_base : int

(** [layout ~cfg ~mode ~groups arrays] assigns [base] addresses in
    declaration order and returns the end of the data segment.
    [groups] is the summary's co-access relation on array ids. *)
val layout :
  cfg:Pcolor_memsim.Config.t ->
  mode:mode ->
  groups:(int * int) list ->
  Pcolor_comp.Ir.array_decl list ->
  int

(** [check_line_aligned ~cfg arrays] is true when every base sits on an
    external-cache-line boundary. *)
val check_line_aligned : cfg:Pcolor_memsim.Config.t -> Pcolor_comp.Ir.array_decl list -> bool

(** [onchip_start_conflicts ~cfg ~groups arrays] counts grouped pairs
    whose bases map to the same on-chip cache index — §5.4's padding
    drives this toward zero. *)
val onchip_start_conflicts :
  cfg:Pcolor_memsim.Config.t ->
  groups:(int * int) list ->
  Pcolor_comp.Ir.array_decl list ->
  int
