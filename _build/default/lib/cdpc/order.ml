(** Steps 2 and 3 of the CDPC algorithm: ordering the uniform access
    sets, and ordering the segments within each set (§5.2).

    Both steps are the same abstract problem — arrange nodes of an
    undirected graph on a path that includes as many graph edges as
    possible — solved with the paper's greedy heuristics. *)

(** {2 Step 2: order the uniform access sets}

    Nodes are access sets (distinct processor-set bitmasks); an edge
    connects two sets whose processor sets intersect.  The heuristic:
    start from the subgraph of sets with one or two processors, begin at
    a singleton set, and greedily extend the path to an adjacent
    unvisited node; remaining nodes are inserted next to the visited node
    with the maximum processor-set overlap.  The effect is that pages
    accessed by both CPU 0 and CPU 1 land between the pages accessed by
    only CPU 0 and only CPU 1 (Figure 4b). *)

let popcount = Pcolor_util.Bits.popcount

let overlap a b = popcount (a land b)

(** [order_sets masks] orders the distinct processor-set masks.  The
    result is a permutation of [List.sort_uniq compare masks].
    Deterministic: ties prefer smaller masks. *)
let order_sets masks =
  let nodes = List.sort_uniq compare masks in
  match nodes with
  | [] -> []
  | _ ->
    let small = List.filter (fun m -> popcount m <= 2) nodes in
    let path = ref [] in
    let visited = Hashtbl.create 16 in
    let visit m =
      Hashtbl.replace visited m ();
      path := m :: !path
    in
    (* Start: a singleton set if one exists, else the smallest small set,
       else the smallest set overall. *)
    let start =
      match List.filter (fun m -> popcount m = 1) small with
      | s :: _ -> s
      | [] -> ( match small with s :: _ -> s | [] -> List.hd nodes)
    in
    visit start;
    (* Greedy extension within the small subgraph: choose an adjacent
       (intersecting) unvisited small node; prefer maximal overlap with
       the path tip, then smaller mask. *)
    let rec extend tip =
      let candidates =
        List.filter (fun m -> (not (Hashtbl.mem visited m)) && overlap tip m > 0) small
      in
      match candidates with
      | [] -> ()
      | _ ->
        let best =
          List.fold_left
            (fun acc m ->
              match acc with
              | None -> Some m
              | Some b ->
                let om = overlap tip m and ob = overlap tip b in
                if om > ob || (om = ob && m < b) then Some m else acc)
            None candidates
        in
        (match best with
        | Some m ->
          visit m;
          extend m
        | None -> ())
    in
    extend start;
    (* Any small nodes disconnected from the path tip: continue greedily
       from them (new path runs appended). *)
    List.iter
      (fun m ->
        if not (Hashtbl.mem visited m) then begin
          visit m;
          extend m
        end)
      small;
    let base_path = List.rev !path in
    (* Insert each remaining node next to the visited node with maximum
       processor-set overlap. *)
    let insert_next_to path node =
      let best_idx = ref 0 and best_ov = ref (-1) in
      List.iteri
        (fun i m ->
          let ov = overlap node m in
          if ov > !best_ov then begin
            best_ov := ov;
            best_idx := i
          end)
        path;
      let rec splice i = function
        | [] -> [ node ]
        | x :: rest -> if i = !best_idx then x :: node :: rest else x :: splice (i + 1) rest
      in
      splice 0 path
    in
    let rest =
      List.filter (fun m -> not (Hashtbl.mem visited m)) nodes
      |> List.sort (fun a b -> compare (popcount a, a) (popcount b, b))
    in
    List.fold_left insert_next_to base_path rest

(** {2 Step 3: order the segments within a uniform access set}

    Nodes are segments; an edge connects segments whose arrays the
    compiler marked as used together (group access information).  Greedy
    path again; when there is a choice, pick the segment with the
    smallest virtual address (§5.2 step 3). *)

(** [order_segments ~grouped segs] orders one access set's segments.
    [grouped a b] tests the group-access relation on array ids. *)
let order_segments ~grouped segs =
  match segs with
  | [] -> []
  | _ ->
    let by_va =
      List.sort
        (fun (a : Segment.t) (b : Segment.t) -> compare (a.lo, a.seg_id) (b.lo, b.seg_id))
        segs
    in
    let visited = Hashtbl.create 16 in
    let out = ref [] in
    let visit s =
      Hashtbl.replace visited s.Segment.seg_id ();
      out := s :: !out
    in
    let adjacent s t =
      s.Segment.seg_id <> t.Segment.seg_id
      && grouped s.Segment.array.Pcolor_comp.Ir.id t.Segment.array.Pcolor_comp.Ir.id
    in
    let rec extend tip =
      let cands =
        List.filter (fun s -> (not (Hashtbl.mem visited s.Segment.seg_id)) && adjacent tip s) by_va
      in
      match cands with
      | [] -> ()
      | s :: _ ->
        (* by_va order makes "smallest virtual address" the tie-break *)
        visit s;
        extend s
    in
    List.iter
      (fun s ->
        if not (Hashtbl.mem visited s.Segment.seg_id) then begin
          visit s;
          extend s
        end)
      by_va;
    List.rev !out
