lib/cdpc/order.mli: Segment
