lib/cdpc/align.ml: Hashtbl List Pcolor_comp Pcolor_memsim Pcolor_util
