lib/cdpc/align.mli: Pcolor_comp Pcolor_memsim
