lib/cdpc/colorer.ml: Array Cyclic Format Hashtbl List Order Pcolor_comp Pcolor_memsim Pcolor_util Pcolor_vm Segment
