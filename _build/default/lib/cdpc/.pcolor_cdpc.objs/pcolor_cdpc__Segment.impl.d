lib/cdpc/segment.ml: Array Format List Pcolor_comp Pcolor_util String
