lib/cdpc/cyclic.ml: Array List
