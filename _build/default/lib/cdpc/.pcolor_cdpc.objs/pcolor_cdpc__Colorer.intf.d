lib/cdpc/colorer.mli: Format Pcolor_comp Pcolor_memsim Pcolor_vm Segment
