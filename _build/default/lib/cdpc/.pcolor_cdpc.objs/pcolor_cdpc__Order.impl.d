lib/cdpc/order.ml: Hashtbl List Pcolor_comp Pcolor_util Segment
