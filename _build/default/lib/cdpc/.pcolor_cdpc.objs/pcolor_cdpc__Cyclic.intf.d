lib/cdpc/cyclic.mli:
