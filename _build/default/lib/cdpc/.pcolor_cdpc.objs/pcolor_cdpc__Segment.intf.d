lib/cdpc/segment.mli: Format Pcolor_comp
