(** Step 1 of the CDPC algorithm: maximal uniform access segments.

    "The algorithm starts by treating the entire virtual address space as
    a single access segment. It processes each array partitioning and
    communication pattern summary in turn, by splitting segments at
    boundaries of arrays and whenever the access pattern within the
    array changes." (§5.2)

    A segment is a contiguous virtual byte range within one array,
    together with the {e processor set} (a bitmask) of CPUs that access
    it during the steady state.  Arrays whose partitioning is not
    page-dense are excluded — CDPC "is only applied to the remaining
    data structures" (§6.1). *)

type t = {
  seg_id : int;
  array : Pcolor_comp.Ir.array_decl;
  lo : int; (* byte VA, inclusive *)
  hi : int; (* byte VA, exclusive *)
  cpus : int; (* processor-set bitmask; never 0 *)
}

(** [bytes s] is the segment length. *)
let bytes s = s.hi - s.lo

(** [pages s ~page_size] is the page range [(first, last)] (inclusive)
    the segment overlaps. *)
let pages s ~page_size = (s.lo / page_size, (s.hi - 1) / page_size)

(** Result of segment computation. *)
type result = {
  segments : t list; (* ascending by (array VA, lo) *)
  excluded : Pcolor_comp.Ir.array_decl list; (* arrays CDPC declined to color *)
}

(* Per-CPU byte intervals restricted to one array, over the steady state. *)
let array_cpu_intervals (p : Pcolor_comp.Ir.program) ~n_cpus ~array_id =
  let phases = Array.of_list p.phases in
  let per_cpu = Array.make n_cpus [] in
  List.iter
    (fun (idx, _) ->
      List.iter
        (fun (nest : Pcolor_comp.Ir.nest) ->
          List.iter
            (fun (r : Pcolor_comp.Ir.ref_) ->
              if r.array.id = array_id then
                for cpu = 0 to n_cpus - 1 do
                  let lo0, hi0 = Pcolor_comp.Schedule.range nest ~n_cpus ~cpu in
                  match Pcolor_comp.Footprint.ref_interval r ~bounds:nest.bounds ~lo0 ~hi0 with
                  | Some iv -> per_cpu.(cpu) <- iv :: per_cpu.(cpu)
                  | None -> ()
                done)
            nest.refs)
        phases.(idx).Pcolor_comp.Ir.nests)
    p.steady;
  Array.map Pcolor_comp.Footprint.norm per_cpu

(** [compute ~summary ~program ~n_cpus] produces the uniform access
    segments of every colorable array, and the list of excluded arrays.
    Array bases must have been assigned (layout ran). *)
let compute ~(summary : Pcolor_comp.Summary.t) ~(program : Pcolor_comp.Ir.program) ~n_cpus =
  let next_id = ref 0 in
  let segments = ref [] in
  let excluded = ref [] in
  List.iter
    (fun (a : Pcolor_comp.Ir.array_decl) ->
      if a.base < 0 then invalid_arg "Segment.compute: run layout first";
      let has_partitions = Pcolor_comp.Summary.partitions_of summary a.id <> [] in
      if has_partitions && not (Pcolor_comp.Summary.colorable summary a.id) then
        excluded := a :: !excluded
      else begin
        let per_cpu = array_cpu_intervals program ~n_cpus ~array_id:a.id in
        (* Sweep: breakpoints at every interval endpoint, clipped to the array. *)
        let a_lo = a.base and a_hi = a.base + Pcolor_comp.Ir.bytes a in
        let points = ref [] in
        Array.iter
          (List.iter (fun (iv : Pcolor_comp.Footprint.interval) ->
               let lo = max a_lo iv.lo and hi = min a_hi iv.hi in
               if lo < hi then points := lo :: hi :: !points))
          per_cpu;
        let points = List.sort_uniq compare !points in
        let rec sweep = function
          | lo :: (hi :: _ as rest) ->
            let mask = ref 0 in
            Array.iteri
              (fun cpu ivs ->
                if
                  List.exists
                    (fun (iv : Pcolor_comp.Footprint.interval) -> iv.lo <= lo && hi <= iv.hi)
                    ivs
                then mask := !mask lor (1 lsl cpu))
              per_cpu;
            if !mask <> 0 then begin
              let id = !next_id in
              incr next_id;
              segments := { seg_id = id; array = a; lo; hi; cpus = !mask } :: !segments
            end;
            sweep rest
          | _ -> ()
        in
        sweep points
      end)
    program.arrays;
  {
    segments =
      List.sort (fun s1 s2 -> compare (s1.array.base, s1.lo) (s2.array.base, s2.lo)) !segments;
    excluded = List.rev !excluded;
  }

(** [coalesce segs] merges adjacent segments of the same array with equal
    processor sets (sweep artifacts from touching intervals). *)
let coalesce segs =
  let rec go = function
    | a :: b :: rest when a.array.Pcolor_comp.Ir.id = b.array.Pcolor_comp.Ir.id && a.hi = b.lo && a.cpus = b.cpus ->
      go ({ a with hi = b.hi } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go segs

(** [total_bytes segs] sums segment lengths — tests check it equals the
    accessed footprint. *)
let total_bytes segs = List.fold_left (fun acc s -> acc + bytes s) 0 segs

(** [pp fmt s] prints one segment. *)
let pp fmt s =
  Format.fprintf fmt "seg%d %s [%#x,%#x) %dB cpus={%s}" s.seg_id s.array.Pcolor_comp.Ir.aname s.lo
    s.hi (bytes s)
    (String.concat "," (List.map string_of_int (Pcolor_util.Bits.bits_to_list s.cpus)))
