(** Data-structure layout: alignment and inter-array padding (§5.4).

    Page mapping cannot fix conflicts in the virtually-indexed on-chip
    cache, nor false sharing.  SUIF therefore (a) aligns every data
    structure to a cache-line boundary, eliminating false sharing between
    structures, and (b) uses the group-access information to pad between
    structures so that co-used arrays never start at the same location in
    the on-chip cache.

    We implement two modes:

    - [Aligned]: bases are cache-line aligned, and small line-granular
      pads are inserted so grouped arrays differ in their base's on-chip
      index whenever the way geometry permits (§5.4: "insert small
      amounts of padding between data structures in the virtual address
      space");
    - [Natural]: 8-byte packing with no padding — the "data structures
      neither aligned nor padded" baseline of Figure 9.  Arrays then
      share cache lines at their boundaries (false sharing) and can land
      on identical on-chip indices (e.g. swim's equal-sized arrays). *)

type mode = Natural | Aligned

(** Default start of the data segment (above text/stack guard pages). *)
let default_base = 1 lsl 16

(** [layout ~cfg ~mode ~groups arrays] assigns [base] addresses in
    declaration order and returns the end of the data segment.
    [groups] is the summary's co-access relation on array ids. *)
let layout ~(cfg : Pcolor_memsim.Config.t) ~mode ~groups (arrays : Pcolor_comp.Ir.array_decl list)
    =
  let l1_span = cfg.l1.size / cfg.l1.assoc in
  let placed = ref [] in
  let cursor = ref default_base in
  List.iter
    (fun (a : Pcolor_comp.Ir.array_decl) ->
      let base =
        match mode with
        | Natural -> Pcolor_util.Bits.round_up !cursor 8
        | Aligned ->
          let line = cfg.l2.line in
          let candidate = ref (Pcolor_util.Bits.round_up !cursor line) in
          let grouped_with b =
            List.mem (min a.id b, max a.id b)
              (List.map (fun (x, y) -> (min x y, max x y)) groups)
          in
          let collides c =
            List.exists
              (fun (b, bbase) -> grouped_with b && bbase mod l1_span = c mod l1_span)
              !placed
          in
          let slots = max 1 (l1_span / line) in
          let tries = ref 0 in
          while collides !candidate && !tries < slots do
            candidate := !candidate + line;
            incr tries
          done;
          !candidate
      in
      a.base <- base;
      cursor := base + Pcolor_comp.Ir.bytes a;
      placed := (a.id, base) :: !placed)
    arrays;
  !cursor

(** [check_line_aligned ~cfg arrays] is true when every base sits on an
    external-cache-line boundary — holds in [Aligned] mode, generally
    not in [Natural] mode. *)
let check_line_aligned ~(cfg : Pcolor_memsim.Config.t) arrays =
  List.for_all (fun (a : Pcolor_comp.Ir.array_decl) -> a.base mod cfg.l2.line = 0) arrays

(** [onchip_start_conflicts ~cfg ~groups arrays] counts grouped pairs
    whose bases map to the same on-chip cache index — the §5.4 padding
    goal is driving this toward zero. *)
let onchip_start_conflicts ~(cfg : Pcolor_memsim.Config.t) ~groups
    (arrays : Pcolor_comp.Ir.array_decl list) =
  let l1_span = cfg.l1.size / cfg.l1.assoc in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (a : Pcolor_comp.Ir.array_decl) -> Hashtbl.replace tbl a.id a.base) arrays;
  List.fold_left
    (fun acc (x, y) ->
      match (Hashtbl.find_opt tbl x, Hashtbl.find_opt tbl y) with
      | Some bx, Some by when bx mod l1_span = by mod l1_span -> acc + 1
      | _ -> acc)
    0 groups
