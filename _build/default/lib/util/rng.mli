(** Deterministic pseudo-random number generation (SplitMix64).  Every
    stochastic decision in the simulator draws from an explicit
    generator so experiments reproduce bit-for-bit from a seed. *)

type t

(** [create seed] returns a fresh generator; equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] duplicates the generator including its stream position. *)
val copy : t -> t

(** [next_int64 t] advances and returns the next raw 64-bit value. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]; raises
    [Invalid_argument] when [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0.0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [split t] derives an independent generator (per-CPU streams). *)
val split : t -> t

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
