(** Streaming statistics and aggregate helpers for experiment reports. *)

(** Welford-style streaming accumulator. *)
type acc

(** [create ()] is an empty accumulator. *)
val create : unit -> acc

(** [add acc x] folds one observation. *)
val add : acc -> float -> unit

val count : acc -> int

(** [mean acc] is the sample mean (0 when empty). *)
val mean : acc -> float

(** [variance acc] is the unbiased sample variance (0 for n < 2). *)
val variance : acc -> float

val stddev : acc -> float

val min_value : acc -> float

val max_value : acc -> float

(** [mean_of xs] is the arithmetic mean of a list (0 for []). *)
val mean_of : float list -> float

(** [geomean xs] is the geometric mean (the SPEC rating); raises
    [Invalid_argument] on non-positive inputs, 0 for []. *)
val geomean : float list -> float

(** [percent part whole] is [100·part/whole] (0 on zero denominator). *)
val percent : float -> float -> float

(** [ratio a b] is [a /. b] with 0 on a zero denominator. *)
val ratio : float -> float -> float
