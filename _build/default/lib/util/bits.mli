(** Integer utilities for power-of-two cache/VM arithmetic. *)

(** [is_pow2 n] is true iff [n] is a positive power of two. *)
val is_pow2 : int -> bool

(** [log2 n] for a positive power of two; raises [Invalid_argument]
    otherwise. *)
val log2 : int -> int

(** [ceil_div a b] is ⌈a/b⌉ for positive [b]. *)
val ceil_div : int -> int -> int

(** [round_up a b] / [round_down a b] round to multiples of [b]. *)
val round_up : int -> int -> int

val round_down : int -> int -> int

(** [next_pow2 n] is the smallest power of two ≥ [max 1 n]. *)
val next_pow2 : int -> int

(** [popcount n] counts set bits of a non-negative int. *)
val popcount : int -> int

(** [iter_bits n f] applies [f] to each set-bit index, lowest first. *)
val iter_bits : int -> (int -> unit) -> unit

(** [bits_to_list n] is the ascending set-bit indices (processor-set
    rendering). *)
val bits_to_list : int -> int list
