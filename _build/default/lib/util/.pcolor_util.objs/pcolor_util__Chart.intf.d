lib/util/chart.mli:
