lib/util/bits.mli:
