lib/util/chart.ml: Array Buffer Char Float Hashtbl List Printf String
