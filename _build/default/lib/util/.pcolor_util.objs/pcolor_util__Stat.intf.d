lib/util/stat.mli:
