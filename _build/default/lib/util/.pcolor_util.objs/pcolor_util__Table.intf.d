lib/util/table.mli:
