lib/util/rng.mli:
