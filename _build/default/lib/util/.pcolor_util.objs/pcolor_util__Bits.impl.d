lib/util/bits.ml: List Printf
