(** Plain-text table rendering for benchmark and experiment output.

    The reproduction harness prints every paper table and figure as an
    aligned text table; this module owns the formatting so all output has
    one consistent look. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
  mutable separators : int list;   (* row counts after which to draw a rule *)
}

(** [create ~title headers] starts a table. Column alignment defaults to
    [Right] for every column except the first. *)
let create ?aligns ~title headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> (match headers with [] -> [] | _ :: rest -> Left :: List.map (fun _ -> Right) rest)
  in
  if List.length aligns <> List.length headers then
    invalid_arg "Table.create: aligns/headers length mismatch";
  { title; headers; aligns; rows = []; separators = [] }

(** [add_row t cells] appends a row; short rows are padded with empty
    cells, long rows raise. *)
let add_row t cells =
  let ncols = List.length t.headers in
  let n = List.length cells in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let cells = cells @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- cells :: t.rows

(** [add_separator t] draws a horizontal rule after the last added row. *)
let add_separator t = t.separators <- List.length t.rows :: t.separators

(** [fcell ?(prec=2) v] formats a float cell. *)
let fcell ?(prec = 2) v = Printf.sprintf "%.*f" prec v

(** [icell v] formats an int cell. *)
let icell v = string_of_int v

(** [pcell v] formats a percentage cell. *)
let pcell v = Printf.sprintf "%.1f%%" v

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

(** [render t] produces the table as a string, title first. *)
let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 1024 in
  let rule () =
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        let w = List.nth widths i and a = List.nth t.aligns i in
        Buffer.add_string buf (pad a w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  line t.headers;
  rule ();
  List.iteri
    (fun idx row ->
      line row;
      if List.mem (idx + 1) t.separators then rule ())
    rows;
  Buffer.contents buf

(** [print t] renders to stdout followed by a blank line. *)
let print t =
  print_string (render t);
  print_newline ()
