(** Small integer utilities used throughout the cache and VM models.
    Cache geometry is power-of-two everywhere, so index/tag extraction is
    mask-and-shift; these helpers keep that arithmetic in one audited
    place. *)

(** [is_pow2 n] is true iff [n] is a positive power of two. *)
let is_pow2 n = n > 0 && n land (n - 1) = 0

(** [log2 n] for a positive power of two [n]; raises [Invalid_argument]
    otherwise.  [log2 4096 = 12]. *)
let log2 n =
  if not (is_pow2 n) then invalid_arg (Printf.sprintf "Bits.log2: %d is not a power of two" n);
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(** [ceil_div a b] is ⌈a/b⌉ for positive [b]. *)
let ceil_div a b =
  if b <= 0 then invalid_arg "Bits.ceil_div: divisor must be positive";
  (a + b - 1) / b

(** [round_up a b] rounds [a] up to the next multiple of [b]. *)
let round_up a b = ceil_div a b * b

(** [round_down a b] rounds [a] down to a multiple of [b]. *)
let round_down a b =
  if b <= 0 then invalid_arg "Bits.round_down: divisor must be positive";
  a / b * b

(** [next_pow2 n] is the smallest power of two >= [max 1 n]. *)
let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(** [popcount n] counts set bits in the non-negative integer [n]. *)
let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

(** [iter_bits n f] applies [f] to the index of every set bit of [n],
    lowest first. *)
let iter_bits n f =
  let rec go n i =
    if n <> 0 then begin
      if n land 1 = 1 then f i;
      go (n lsr 1) (i + 1)
    end
  in
  go n 0

(** [bits_to_list n] is the ascending list of set-bit indices of [n];
    convenient for rendering processor sets. *)
let bits_to_list n =
  let acc = ref [] in
  iter_bits n (fun i -> acc := i :: !acc);
  List.rev !acc
