(** Plain-text table rendering — one consistent look for all benchmark
    and experiment output. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table; alignment defaults to
    [Right] for every column except the first.  Raises
    [Invalid_argument] on an aligns/headers length mismatch. *)
val create : ?aligns:align list -> title:string -> string list -> t

(** [add_row t cells] appends a row (short rows padded; long rows
    raise). *)
val add_row : t -> string list -> unit

(** [add_separator t] draws a rule after the last added row. *)
val add_separator : t -> unit

(** Cell formatters. *)
val fcell : ?prec:int -> float -> string

val icell : int -> string

val pcell : float -> string

(** [render t] produces the table as a string, title first. *)
val render : t -> string

(** [print t] renders to stdout followed by a blank line. *)
val print : t -> unit
