(** Streaming statistics and aggregate helpers for experiment reports. *)

(** Welford-style streaming accumulator for mean and variance. *)
type acc = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

(** [create ()] is an empty accumulator. *)
let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

(** [add acc x] folds one observation into [acc]. *)
let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if x < acc.min_v then acc.min_v <- x;
  if x > acc.max_v then acc.max_v <- x

(** [count acc] is the number of observations folded so far. *)
let count acc = acc.n

(** [mean acc] is the sample mean; 0 when empty. *)
let mean acc = if acc.n = 0 then 0.0 else acc.mean

(** [variance acc] is the unbiased sample variance; 0 for n < 2. *)
let variance acc = if acc.n < 2 then 0.0 else acc.m2 /. float_of_int (acc.n - 1)

(** [stddev acc] is the sample standard deviation. *)
let stddev acc = sqrt (variance acc)

(** [min_value acc] / [max_value acc]; 0 when empty. *)
let min_value acc = if acc.n = 0 then 0.0 else acc.min_v

let max_value acc = if acc.n = 0 then 0.0 else acc.max_v

(** [mean_of xs] is the arithmetic mean of a list; 0 for []. *)
let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** [geomean xs] is the geometric mean; the SPEC95fp rating is a
    geometric mean of per-benchmark ratios.  Raises [Invalid_argument]
    on non-positive inputs. *)
let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stat.geomean: non-positive input";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

(** [percent part whole] is [100 * part / whole], 0 when [whole] = 0. *)
let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

(** [ratio a b] is [a /. b] with 0 for a zero denominator; used for
    speedup computations where a degenerate run yields 0. *)
let ratio a b = if b = 0.0 then 0.0 else a /. b
