(** Deterministic pseudo-random number generation.

    Every stochastic decision in the simulator (bin-hopping fault races,
    randomized page mapping, workload perturbations) draws from an
    explicit [Rng.t] so that experiments are reproducible bit-for-bit
    from a seed.  The generator is SplitMix64 (Steele, Lea & Flood,
    OOPSLA 2014): tiny state, excellent statistical quality, and
    trivially splittable for per-CPU streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(** [create seed] returns a fresh generator; equal seeds yield equal
    streams. *)
let create seed = { state = Int64.of_int seed }

(** [copy t] duplicates the generator, including its position in the
    stream. *)
let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [next_int64 t] advances the stream and returns the next raw 64-bit
    value. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    when [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's tagged int non-negatively *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [float t bound] is uniform in [\[0.0, bound)]. *)
let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

(** [bool t] is a fair coin flip. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [split t] derives an independent generator, advancing [t] once.
    Used to give each simulated CPU its own stream. *)
let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
