(** Page-coloring hints: the CDPC interface to the operating system.

    "The interface to the operating system consists of a sequence of
    virtual pages with their associated preferred color. Applications do
    not request particular pages of memory, but only suggest a particular
    coloring for a range of pages. The information is treated as a hint
    by the operating system." (§5.3)

    In IRIX the table is installed through a [madvise] extension and
    consulted by the VM subsystem at fault time; we model exactly that. *)

type t = {
  table : (int, int) Hashtbl.t; (* vpage -> preferred color *)
  n_colors : int;
}

(** [create ~n_colors] is an empty hint table for a machine with
    [n_colors] page colors. *)
let create ~n_colors =
  if n_colors <= 0 then invalid_arg "Hints.create";
  { table = Hashtbl.create (1 lsl 12); n_colors }

(** [n_colors t] is the color-space size hints are expressed in. *)
let n_colors t = t.n_colors

(** [set t ~vpage ~color] installs or replaces one page's hint.  Raises
    [Invalid_argument] if [color] is out of range — the run-time library
    must produce colors valid for the actual machine. *)
let set t ~vpage ~color =
  if color < 0 || color >= t.n_colors then invalid_arg "Hints.set: color out of range";
  Hashtbl.replace t.table vpage color

(** [find t vpage] is the preferred color, if any was advised. *)
let find t vpage = Hashtbl.find_opt t.table vpage

(** [count t] is the number of advised pages. *)
let count t = Hashtbl.length t.table

(** [iter t f] applies [f ~vpage ~color] to every hint. *)
let iter t f = Hashtbl.iter (fun vpage color -> f ~vpage ~color) t.table

(** [color_histogram t] counts advised pages per color — the CDPC
    round-robin step makes this near-uniform, which tests assert. *)
let color_histogram t =
  let h = Array.make t.n_colors 0 in
  Hashtbl.iter (fun _ c -> h.(c) <- h.(c) + 1) t.table;
  h
