(** Page-coloring hints: the CDPC interface to the operating system — a
    table of (virtual page → preferred color) treated as advisory at
    page-fault time (§5.3; madvise-style in IRIX). *)

type t

(** [create ~n_colors] is an empty hint table for a machine with
    [n_colors] page colors. *)
val create : n_colors:int -> t

(** [n_colors t] is the color-space size. *)
val n_colors : t -> int

(** [set t ~vpage ~color] installs or replaces one page's hint.  Raises
    [Invalid_argument] on an out-of-range color. *)
val set : t -> vpage:int -> color:int -> unit

(** [find t vpage] is the preferred color, if advised. *)
val find : t -> int -> int option

(** [count t] is the number of advised pages. *)
val count : t -> int

(** [iter t f] applies [f ~vpage ~color] to every hint. *)
val iter : t -> (vpage:int -> color:int -> unit) -> unit

(** [color_histogram t] counts advised pages per color (CDPC's
    round-robin step makes this near-uniform). *)
val color_histogram : t -> int array
