lib/vm/frame_pool.ml: Array List
