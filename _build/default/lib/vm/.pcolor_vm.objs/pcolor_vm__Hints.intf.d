lib/vm/hints.mli:
