lib/vm/hints.ml: Array Hashtbl
