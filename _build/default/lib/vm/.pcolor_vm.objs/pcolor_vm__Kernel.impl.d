lib/vm/kernel.ml: Array Frame_pool Option Page_table Pcolor_memsim Policy
