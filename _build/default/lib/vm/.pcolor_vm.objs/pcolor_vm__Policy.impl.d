lib/vm/policy.ml: Hints Pcolor_util Printf
