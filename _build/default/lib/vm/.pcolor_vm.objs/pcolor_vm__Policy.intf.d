lib/vm/policy.mli: Hints
