lib/vm/frame_pool.mli:
