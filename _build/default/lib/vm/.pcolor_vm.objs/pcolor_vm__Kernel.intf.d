lib/vm/kernel.mli: Frame_pool Page_table Pcolor_memsim Policy
