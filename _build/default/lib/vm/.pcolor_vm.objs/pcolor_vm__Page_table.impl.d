lib/vm/page_table.ml: Hashtbl
