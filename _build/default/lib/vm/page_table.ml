(** Per-address-space virtual→physical page map.

    The workloads are single-address-space parallel programs (SUIF's
    master/slave threads share memory), so one table serves all CPUs;
    per-CPU TLBs cache its entries. *)

type t = {
  map : (int, int) Hashtbl.t; (* vpage -> frame *)
  rev : (int, int) Hashtbl.t; (* frame -> vpage; recoloring needs the inverse *)
  mutable mapped : int;
}

(** [create ()] is an empty page table. *)
let create () = { map = Hashtbl.create (1 lsl 14); rev = Hashtbl.create (1 lsl 14); mapped = 0 }

(** [find t vpage] is the frame backing [vpage], if mapped. *)
let find t vpage = Hashtbl.find_opt t.map vpage

(** [mem t vpage] tests mappedness. *)
let mem t vpage = Hashtbl.mem t.map vpage

(** [map t ~vpage ~frame] installs a mapping; raises [Invalid_argument]
    if [vpage] is already mapped (remapping must go through [unmap]). *)
let map t ~vpage ~frame =
  if Hashtbl.mem t.map vpage then invalid_arg "Page_table.map: page already mapped";
  Hashtbl.add t.map vpage frame;
  Hashtbl.replace t.rev frame vpage;
  t.mapped <- t.mapped + 1

(** [find_by_frame t frame] is the virtual page mapped to [frame], if
    any — the lookup the recoloring daemon needs to turn hot physical
    pages back into virtual pages. *)
let find_by_frame t frame = Hashtbl.find_opt t.rev frame

(** [unmap t vpage] removes a mapping, returning the frame it held. *)
let unmap t vpage =
  match Hashtbl.find_opt t.map vpage with
  | None -> None
  | Some frame ->
    Hashtbl.remove t.map vpage;
    Hashtbl.remove t.rev frame;
    t.mapped <- t.mapped - 1;
    Some frame

(** [mapped_count t] is the number of live mappings. *)
let mapped_count t = t.mapped

(** [iter t f] applies [f ~vpage ~frame] to every mapping. *)
let iter t f = Hashtbl.iter (fun vpage frame -> f ~vpage ~frame) t.map
