(** Per-address-space virtual→physical page map (one table per parallel
    program; per-CPU TLBs cache its entries). *)

type t

(** [create ()] is an empty page table. *)
val create : unit -> t

(** [find t vpage] is the frame backing [vpage], if mapped. *)
val find : t -> int -> int option

(** [find_by_frame t frame] is the inverse lookup, used by the
    recoloring daemon. *)
val find_by_frame : t -> int -> int option

(** [mem t vpage] tests mappedness. *)
val mem : t -> int -> bool

(** [map t ~vpage ~frame] installs a mapping; raises
    [Invalid_argument] if [vpage] is already mapped. *)
val map : t -> vpage:int -> frame:int -> unit

(** [unmap t vpage] removes a mapping, returning the frame it held. *)
val unmap : t -> int -> int option

(** [mapped_count t] is the number of live mappings. *)
val mapped_count : t -> int

(** [iter t f] applies [f ~vpage ~frame] to every mapping. *)
val iter : t -> (vpage:int -> frame:int -> unit) -> unit
