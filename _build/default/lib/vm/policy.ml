(** Page-mapping policies (§2.1).

    - {b Page coloring} maps consecutive virtual pages to consecutive
      colors ([color = vpage mod n_colors]), exploiting spatial locality;
      IRIX and Windows NT use it.
    - {b Bin hopping} cycles a global counter through the colors in
      page-fault order, exploiting temporal locality; Digital UNIX uses
      it.  Concurrent faults from several CPUs race for the counter, so
      the outcome is not deterministic on a real machine — modeled here
      by an optional seeded jitter that occasionally skips counter values
      (as if another CPU's fault interleaved).
    - {b Random} assigns uniformly random colors; a useful baseline that
      spreads load but ignores all locality.
    - {b Hinted} (CDPC) consults a {!Hints} table first and falls back to
      one of the static policies for unadvised pages, matching both the
      paper's IRIX implementation (fallback: page coloring) and its
      Digital UNIX implementation (fallback: bin hopping). *)

type base = Page_coloring | Bin_hopping | Random

type spec = Base of base | Hinted of { hints : Hints.t; fallback : base }

type t = {
  spec : spec;
  n_colors : int;
  mutable next_bin : int; (* bin-hopping cursor *)
  rng : Pcolor_util.Rng.t; (* Random colors and bin-hopping race jitter *)
  race_jitter : bool;
  mutable hint_hits : int;
  mutable hint_misses : int;
}

(** [create ~n_colors ~seed ?race_jitter spec] instantiates a policy.
    [race_jitter] (default off) enables the bin-hopping fault-race model;
    keep it off while touching pages from a single thread (the §5.3
    Digital UNIX trick relies on startup faults being serialized). *)
let create ~n_colors ~seed ?(race_jitter = false) spec =
  if n_colors <= 0 then invalid_arg "Policy.create";
  (match spec with
  | Hinted { hints; _ } when Hints.n_colors hints <> n_colors ->
    invalid_arg "Policy.create: hint table built for a different color count"
  | _ -> ());
  {
    spec;
    n_colors;
    next_bin = 0;
    rng = Pcolor_util.Rng.create seed;
    race_jitter;
    hint_hits = 0;
    hint_misses = 0;
  }

(** [name t] is a short label for reports. *)
let name t =
  let base_name = function
    | Page_coloring -> "page-coloring"
    | Bin_hopping -> "bin-hopping"
    | Random -> "random"
  in
  match t.spec with
  | Base b -> base_name b
  | Hinted { fallback; _ } -> Printf.sprintf "cdpc(%s)" (base_name fallback)

let base_color t b vpage =
  match b with
  | Page_coloring -> vpage mod t.n_colors
  | Bin_hopping ->
    let c = t.next_bin in
    let step =
      if t.race_jitter && Pcolor_util.Rng.int t.rng 100 < 25 then
        (* concurrent faults from other CPUs stole counter values *)
        2 + Pcolor_util.Rng.int t.rng 2
      else 1
    in
    t.next_bin <- (t.next_bin + step) mod t.n_colors;
    c
  | Random -> Pcolor_util.Rng.int t.rng t.n_colors

(** [preferred_color t ~vpage] decides the color the OS will request
    from the frame pool for a faulting page.  Bin hopping and Random
    advance internal state, so call this exactly once per fault. *)
let preferred_color t ~vpage =
  match t.spec with
  | Base b -> base_color t b vpage
  | Hinted { hints; fallback } -> (
    match Hints.find hints vpage with
    | Some c ->
      t.hint_hits <- t.hint_hits + 1;
      c
    | None ->
      t.hint_misses <- t.hint_misses + 1;
      base_color t fallback vpage)

(** [hint_hits t] / [hint_misses t] count faults served from the hint
    table versus the fallback policy. *)
let hint_hits t = t.hint_hits

let hint_misses t = t.hint_misses
