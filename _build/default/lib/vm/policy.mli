(** Page-mapping policies (§2.1): page coloring (consecutive virtual
    pages → consecutive colors; IRIX, Windows NT), bin hopping (cyclic
    counter in fault order, with an optional seeded model of the
    concurrent-fault race; Digital UNIX), uniform random, and the
    CDPC-hinted policy that consults a {!Hints} table and falls back to
    a static policy for unadvised pages. *)

type base = Page_coloring | Bin_hopping | Random

type spec = Base of base | Hinted of { hints : Hints.t; fallback : base }

type t

(** [create ~n_colors ~seed ?race_jitter spec] instantiates a policy.
    [race_jitter] (default off) enables the bin-hopping fault-race
    model; keep it off when faults are serialized (uniprocessor, or the
    §5.3 startup-touch trick).  Raises [Invalid_argument] when a hint
    table's color space disagrees with [n_colors]. *)
val create : n_colors:int -> seed:int -> ?race_jitter:bool -> spec -> t

(** [name t] is a short label for reports. *)
val name : t -> string

(** [preferred_color t ~vpage] decides the color the OS will request
    for a faulting page.  Bin hopping and Random advance internal
    state: call exactly once per fault. *)
val preferred_color : t -> vpage:int -> int

(** [hint_hits t] / [hint_misses t] count faults served from the hint
    table versus the fallback policy. *)
val hint_hits : t -> int

val hint_misses : t -> int
