(** Line-granularity coherence directory with word-level write masks.

    The directory serves three purposes:

    - {b invalidation}: a write by CPU [c] invalidates every other CPU's
      cached copy, so their next access misses even if their external
      cache still holds the (stale) tag;
    - {b classification}: an invalidation miss is {e true sharing} when
      a word actually written by the remote CPU is the one accessed, and
      {e false sharing} otherwise (Dubois et al., as used in §4.1);
    - {b sourcing}: a miss to a line held dirty by another CPU is
      serviced cache-to-cache at the higher remote latency (750 ns in the
      base configuration).

    State is kept per line in a hash table: a validity bitmask over CPUs,
    the last writer, whether the writer's copy is dirty, and the mask of
    words written since the last writer change. *)

type line_state = {
  mutable valid_mask : int; (* bit c set: CPU c's cached copy is coherent *)
  mutable writer : int; (* last writing CPU, -1 if never written *)
  mutable dirty : bool; (* writer's copy not yet written back *)
  mutable wmask : int; (* words written since writer acquired the line *)
}

type t = {
  table : (int, line_state) Hashtbl.t; (* line number -> state *)
  word_shift : int; (* log2 of word size, 8-byte words *)
  words_per_line_mask : int;
}

(** [create ~line_size] builds an empty directory for [line_size]-byte
    lines with 8-byte words. *)
let create ~line_size =
  if line_size < 8 || not (Pcolor_util.Bits.is_pow2 line_size) then
    invalid_arg "Directory.create: bad line size";
  {
    table = Hashtbl.create (1 lsl 16);
    word_shift = 3;
    words_per_line_mask = (line_size / 8) - 1;
  }

let word_bit t addr = 1 lsl ((addr lsr t.word_shift) land t.words_per_line_mask)

let get t line =
  match Hashtbl.find_opt t.table line with
  | Some s -> s
  | None ->
    let s = { valid_mask = 0; writer = -1; dirty = false; wmask = 0 } in
    Hashtbl.add t.table line s;
    s

(** Result of consulting the directory on one reference. *)
type verdict = {
  coherent : bool;
      (** the CPU's cached copy (if any) is still valid; a cache-tag hit
          with [coherent = false] is an invalidation miss *)
  sharing : [ `None | `True | `False ];
      (** for an invalidation miss: whether the accessed word was
          remotely written *)
  remote_dirty : bool;
      (** on a miss, the line must be fetched dirty from another CPU *)
}

(** [inspect t ~cpu ~line ~addr] reports the coherence view of CPU [cpu]
    for the reference at [addr] without changing state.  [addr] selects
    the word for the true/false-sharing test. *)
let inspect t ~cpu ~line ~addr =
  match Hashtbl.find_opt t.table line with
  | None -> { coherent = false; sharing = `None; remote_dirty = false }
  | Some s ->
    let coherent = s.valid_mask land (1 lsl cpu) <> 0 in
    let sharing =
      if coherent || s.writer < 0 || s.writer = cpu then `None
      else if s.wmask land word_bit t addr <> 0 then `True
      else `False
    in
    let remote_dirty = s.dirty && s.writer >= 0 && s.writer <> cpu in
    { coherent; sharing; remote_dirty }

(** [record_read t ~cpu ~line] notes that CPU [cpu] now holds a coherent
    copy.  If the line was dirty at another CPU, that copy transitions to
    clean-shared (models the cache-to-cache transfer + memory update).
    Returns [true] if this read forced a remote dirty line clean (so the
    caller can also clean the remote cache's dirty bit). *)
let record_read t ~cpu ~line =
  let s = get t line in
  let forced_clean = s.dirty && s.writer >= 0 && s.writer <> cpu in
  if forced_clean then s.dirty <- false;
  s.valid_mask <- s.valid_mask lor (1 lsl cpu);
  forced_clean

(** [record_write t ~cpu ~line ~addr] makes CPU [cpu] the exclusive owner
    and accumulates the written word into the mask (the mask resets when
    ownership changes hands, so it reflects "words written since the
    current writer acquired the line").  Returns the bitmask of {e other}
    CPUs whose copies were invalidated — the caller uses a nonempty mask
    to account an upgrade/invalidate bus transaction. *)
let record_write t ~cpu ~line ~addr =
  let s = get t line in
  let me = 1 lsl cpu in
  let invalidated = s.valid_mask land lnot me in
  if s.writer <> cpu then begin
    s.writer <- cpu;
    s.wmask <- 0
  end;
  s.wmask <- s.wmask lor word_bit t addr;
  s.dirty <- true;
  s.valid_mask <- me;
  invalidated

(** [writeback t ~cpu ~line] marks the line clean if [cpu] owned it
    dirty (victim eviction wrote it to memory). *)
let writeback t ~cpu ~line =
  match Hashtbl.find_opt t.table line with
  | Some s when s.writer = cpu -> s.dirty <- false
  | _ -> ()

(** [evict t ~cpu ~line] clears CPU [cpu]'s validity bit after its cache
    dropped the line, keeping directory state consistent with caches. *)
let evict t ~cpu ~line =
  match Hashtbl.find_opt t.table line with
  | Some s -> s.valid_mask <- s.valid_mask land lnot (1 lsl cpu)
  | None -> ()

(** [lines t] is the number of lines the directory tracks (test helper). *)
let lines t = Hashtbl.length t.table

(** [reset t] forgets all sharing state. *)
let reset t = Hashtbl.reset t.table
