(** Fully-associative LRU shadow cache, used to split replacement misses
    into conflict and capacity.

    A reference that misses in the real set-associative cache but would
    have hit in a fully-associative LRU cache of the same total capacity
    is a {e conflict} miss — it exists only because of limited
    associativity and indexing, which is precisely what page coloring
    manipulates.  A miss in both is a {e capacity} miss.

    The structure is an O(1) LRU: an open hash table from line number to
    slot, plus an intrusive doubly-linked list over slot arrays. *)

type t = {
  capacity : int; (* number of lines *)
  table : (int, int) Hashtbl.t; (* line -> slot *)
  line_no : int array; (* slot -> line (-1 = free) *)
  prev : int array;
  next : int array;
  mutable head : int; (* most recently used; -1 when empty *)
  mutable tail : int; (* least recently used; -1 when empty *)
  mutable free : int list;
  mutable size : int;
}

(** [create geom] builds a shadow for a cache of the same byte capacity
    and line size as [geom] (associativity is ignored: the shadow is
    fully associative by definition). *)
let create (g : Config.cache_geom) =
  let capacity = g.size / g.line in
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    line_no = Array.make capacity (-1);
    prev = Array.make capacity (-1);
    next = Array.make capacity (-1);
    head = -1;
    tail = -1;
    free = List.init capacity (fun i -> i);
    size = 0;
  }

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p <> -1 then t.next.(p) <- n else t.head <- n;
  if n <> -1 then t.prev.(n) <- p else t.tail <- p;
  t.prev.(slot) <- -1;
  t.next.(slot) <- -1

let push_front t slot =
  t.prev.(slot) <- -1;
  t.next.(slot) <- t.head;
  if t.head <> -1 then t.prev.(t.head) <- slot;
  t.head <- slot;
  if t.tail = -1 then t.tail <- slot

(** [access t line] touches [line]: returns [true] if it was resident
    (an FA-LRU hit), [false] otherwise.  On a miss the line is inserted,
    evicting the LRU line when full.  Must be called on {e every}
    reference, hit or miss in the real cache, to keep recency exact. *)
let access t line =
  match Hashtbl.find_opt t.table line with
  | Some slot ->
    if t.head <> slot then begin
      unlink t slot;
      push_front t slot
    end;
    true
  | None ->
    let slot =
      match t.free with
      | s :: rest ->
        t.free <- rest;
        t.size <- t.size + 1;
        s
      | [] ->
        let victim = t.tail in
        Hashtbl.remove t.table t.line_no.(victim);
        unlink t victim;
        victim
    in
    t.line_no.(slot) <- line;
    Hashtbl.replace t.table line slot;
    push_front t slot;
    false

(** [mem t line] is a residency probe with no LRU side effect. *)
let mem t line = Hashtbl.mem t.table line

(** [size t] is the current number of resident lines. *)
let size t = t.size

(** [capacity t] is the maximum number of resident lines. *)
let capacity t = t.capacity
