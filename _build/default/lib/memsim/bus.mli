(** Split-transaction bus model: occupancy accounting by transaction
    category (data, write-back, upgrade — Figure 2's bus panel) plus an
    analytic M/M/1-style contention stretch applied per region by the
    engine. *)

type t

(** [create ()] is a fresh, idle bus account. *)
val create : unit -> t

(** [reset t] zeroes accumulated occupancy. *)
val reset : t -> unit

(** [add_data t c] / [add_writeback t c] / [add_upgrade t c] account
    [c] CPU cycles of bus occupancy. *)
val add_data : t -> int -> unit

val add_writeback : t -> int -> unit

val add_upgrade : t -> int -> unit

(** [busy_cycles t] is total occupancy. *)
val busy_cycles : t -> int

(** [occupancy ~busy ~wall] is utilization in [0, ∞) (demand may exceed
    capacity before the fixed point). *)
val occupancy : busy:int -> wall:int -> float

(** [stretch_factor rho] is the memory-latency multiplier under
    utilization [rho]: 1 below 30%, then climbing with the M/M/1
    waiting-time shape, clamped at the 0.95 pole. *)
val stretch_factor : float -> float

(** [categories t] is [(data, writeback, upgrade)] cycles. *)
val categories : t -> int * int * int

(** [add_into dst src] accumulates [src] into [dst]. *)
val add_into : t -> t -> unit
