(** Miss taxonomy used throughout the simulator and the reports.

    Replacement misses are split into capacity and conflict using a
    fully-associative shadow cache (see {!Shadow}); communication misses
    are split into true and false sharing at word granularity following
    Dubois et al., the classification the paper itself uses (§4.1). *)

type t =
  | Cold  (** first-ever access to the line by this CPU *)
  | Capacity  (** miss that a fully-associative LRU cache of equal size would also take *)
  | Conflict  (** miss caused purely by limited associativity / indexing *)
  | True_sharing  (** invalidation miss where the accessed word was written remotely *)
  | False_sharing  (** invalidation miss on a line whose accessed word was untouched *)

let all = [ Cold; Capacity; Conflict; True_sharing; False_sharing ]

(** [to_string c] is a short lowercase label. *)
let to_string = function
  | Cold -> "cold"
  | Capacity -> "capacity"
  | Conflict -> "conflict"
  | True_sharing -> "true-sharing"
  | False_sharing -> "false-sharing"

(** [is_replacement c] is true for the capacity/conflict classes the
    paper groups as "replacement misses". *)
let is_replacement = function Capacity | Conflict -> true | _ -> false

(** [is_communication c] is true for sharing misses. *)
let is_communication = function True_sharing | False_sharing -> true | _ -> false

(** Per-class counter array indexed by the class's position in {!all}. *)
type counts = int array

let index = function
  | Cold -> 0
  | Capacity -> 1
  | Conflict -> 2
  | True_sharing -> 3
  | False_sharing -> 4

(** [make_counts ()] is a fresh zeroed counter set. *)
let make_counts () : counts = Array.make (List.length all) 0

(** [incr counts c] bumps class [c]. *)
let incr (counts : counts) c = counts.(index c) <- counts.(index c) + 1

(** [get counts c] reads class [c]. *)
let get (counts : counts) c = counts.(index c)

(** [total counts] sums every class. *)
let total (counts : counts) = Array.fold_left ( + ) 0 counts

(** [add_into dst src] accumulates [src] into [dst]. *)
let add_into (dst : counts) (src : counts) =
  Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src
