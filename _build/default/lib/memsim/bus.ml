(** Split-transaction bus model: bandwidth accounting plus a queueing
    stretch factor for contention.

    The paper's machine sustains 1.2 GB/s; with 16 processors several
    benchmarks occupy 50–95% of the bus and their miss latencies inflate
    (tomcatv's miss rate drops 3% from 1 to 16 CPUs yet its MCPI more
    than doubles, §4.1).  We reproduce this with an analytic model: the
    engine simulates a parallel region, sums the bus cycles its misses
    consume, computes occupancy against the region's wall-clock time, and
    re-costs memory stalls with an M/M/1-style latency multiplier.

    Bus cycles are counted in CPU cycles of occupancy, split by
    transaction type as in Figure 2's bus-utilization panel: data
    transfers (request+reply), write-backs, and shared→exclusive
    upgrades. *)

type t = {
  mutable data_cycles : int;
  mutable writeback_cycles : int;
  mutable upgrade_cycles : int;
}

(** [create ()] is a fresh, idle bus account. *)
let create () = { data_cycles = 0; writeback_cycles = 0; upgrade_cycles = 0 }

(** [reset t] zeroes all accumulated occupancy. *)
let reset t =
  t.data_cycles <- 0;
  t.writeback_cycles <- 0;
  t.upgrade_cycles <- 0

(** [add_data t c] / [add_writeback t c] / [add_upgrade t c] account [c]
    CPU cycles of bus occupancy to the respective category. *)
let add_data t c = t.data_cycles <- t.data_cycles + c

let add_writeback t c = t.writeback_cycles <- t.writeback_cycles + c

let add_upgrade t c = t.upgrade_cycles <- t.upgrade_cycles + c

(** [busy_cycles t] is total occupancy across categories. *)
let busy_cycles t = t.data_cycles + t.writeback_cycles + t.upgrade_cycles

(** [occupancy ~busy ~wall] is the utilization in [0,1]: [busy] bus
    cycles offered during [wall] cycles of wall-clock time.  Demand may
    exceed capacity (>1) before the contention fixed point is applied. *)
let occupancy ~busy ~wall =
  if wall <= 0 then 0.0 else float_of_int busy /. float_of_int wall

(** [stretch_factor rho] multiplies memory latency under utilization
    [rho].  M/M/1 waiting-time shape [1 + rho/(1-rho)] with the pole
    clamped: utilization is capped at 0.95 so the factor never exceeds
    20; below 30% utilization contention is negligible and the factor is
    1.  This gives latencies that are flat until the bus approaches
    saturation and then climb steeply, matching Figure 2's behaviour. *)
let stretch_factor rho =
  if rho <= 0.30 then 1.0
  else
    let rho = Float.min rho 0.95 in
    1.0 +. ((rho -. 0.30) /. (1.0 -. rho))

(** [categories t] is [(data, writeback, upgrade)] occupancy in cycles. *)
let categories t = (t.data_cycles, t.writeback_cycles, t.upgrade_cycles)

(** [add_into dst src] accumulates [src]'s occupancy into [dst]. *)
let add_into dst src =
  dst.data_cycles <- dst.data_cycles + src.data_cycles;
  dst.writeback_cycles <- dst.writeback_cycles + src.writeback_cycles;
  dst.upgrade_cycles <- dst.upgrade_cycles + src.upgrade_cycles
