(** Set-associative, write-back, write-allocate cache with LRU
    replacement.  Used for the virtually-indexed on-chip cache (pass
    virtual addresses) and the physically-indexed external cache (pass
    physical addresses).  The hot path is allocation-free. *)

type t

type result =
  | Hit of { was_dirty : bool }
      (** dirty state {e before} the access; a write hitting a clean
          line is a shared→exclusive upgrade in the coherence layer *)
  | Miss of { evicted : int; evicted_dirty : bool }
      (** [evicted] is the victim's line number, or [-1] if the way was
          empty *)

(** [create geom] builds an empty cache. *)
val create : Config.cache_geom -> t

(** [line_of t addr] is the line number containing byte [addr]. *)
val line_of : t -> int -> int

(** [line_bits t] is log2 of the line size. *)
val line_bits : t -> int

(** [access t ~addr ~write] simulates one reference (write-allocate;
    LRU victim reported for write-back modeling). *)
val access : t -> addr:int -> write:bool -> result

(** [contains t addr] is a non-intrusive residency probe. *)
val contains : t -> int -> bool

(** [invalidate t addr] drops the line if present, returning whether it
    was dirty. *)
val invalidate : t -> int -> bool option

(** [set_dirty_if_present t addr] marks the line dirty when resident,
    reporting whether it was found. *)
val set_dirty_if_present : t -> int -> bool

(** [clean t addr] clears the line's dirty bit if resident. *)
val clean : t -> int -> unit

(** [flush t] empties the cache (statistics preserved). *)
val flush : t -> unit

(** [hits t] / [misses t] are cumulative counters. *)
val hits : t -> int

val misses : t -> int

(** [reset_stats t] zeroes counters without touching contents (warm-up
    discard, §3.2). *)
val reset_stats : t -> unit

(** [resident_lines t] lists cached line numbers (test helper). *)
val resident_lines : t -> int list
