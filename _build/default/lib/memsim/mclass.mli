(** Miss taxonomy: replacement misses split into capacity/conflict via a
    fully-associative shadow cache; communication misses split into
    true/false sharing at word granularity (Dubois et al., §4.1). *)

type t = Cold | Capacity | Conflict | True_sharing | False_sharing

(** [all] lists every class in display order. *)
val all : t list

(** [to_string c] is a short lowercase label. *)
val to_string : t -> string

(** [is_replacement c] is true for capacity/conflict (the paper's
    "replacement misses"). *)
val is_replacement : t -> bool

(** [is_communication c] is true for sharing misses. *)
val is_communication : t -> bool

(** Per-class counters, indexed by {!index}. *)
type counts = int array

(** [index c] is the class's position in {!all}. *)
val index : t -> int

(** [make_counts ()] is a fresh zeroed counter set. *)
val make_counts : unit -> counts

(** [incr counts c] bumps class [c]. *)
val incr : counts -> t -> unit

(** [get counts c] reads class [c]. *)
val get : counts -> t -> int

(** [total counts] sums every class. *)
val total : counts -> int

(** [add_into dst src] accumulates [src] into [dst]. *)
val add_into : counts -> counts -> unit
