(** Fully-associative LRU shadow cache with O(1) access, used to split
    replacement misses: a reference that misses in the real
    set-associative cache but hits here is a {e conflict} miss; a miss
    in both is {e capacity}. *)

type t

(** [create geom] builds a shadow of the same byte capacity and line
    size as [geom] (associativity ignored: fully associative). *)
val create : Config.cache_geom -> t

(** [access t line] touches [line]: [true] iff it was resident.  Must
    be called on every reference the shadowed cache sees. *)
val access : t -> int -> bool

(** [mem t line] is a residency probe without LRU effect. *)
val mem : t -> int -> bool

(** [size t] is the current resident-line count. *)
val size : t -> int

(** [capacity t] is the maximum resident-line count. *)
val capacity : t -> int
