(** Line-granularity coherence directory with word-level write masks:
    invalidation on writes, true/false-sharing classification (Dubois et
    al., §4.1), and dirty-remote sourcing at the higher cache-to-cache
    latency. *)

type t

(** [create ~line_size] builds an empty directory (8-byte words). *)
val create : line_size:int -> t

(** The directory's view of one reference. *)
type verdict = {
  coherent : bool;
      (** the CPU's copy (if cached) is valid; cleared only by a remote
          write, so a miss with [coherent = false] is communication *)
  sharing : [ `None | `True | `False ];
      (** whether the accessed word was remotely written *)
  remote_dirty : bool;  (** the line must be fetched dirty from another CPU *)
}

(** [inspect t ~cpu ~line ~addr] reports without changing state;
    [addr] selects the word for the true/false test. *)
val inspect : t -> cpu:int -> line:int -> addr:int -> verdict

(** [record_read t ~cpu ~line] notes a coherent copy at [cpu]; returns
    [true] when this read forced a remote dirty copy clean. *)
val record_read : t -> cpu:int -> line:int -> bool

(** [record_write t ~cpu ~line ~addr] makes [cpu] exclusive owner and
    accumulates the written word; returns the bitmask of other CPUs
    invalidated. *)
val record_write : t -> cpu:int -> line:int -> addr:int -> int

(** [writeback t ~cpu ~line] marks the line clean after a victim
    write-back by its owner. *)
val writeback : t -> cpu:int -> line:int -> unit

(** [evict t ~cpu ~line] clears [cpu]'s validity bit (used only by
    explicit frame invalidation; ordinary evictions keep the bit so
    misses classify as replacement, not communication). *)
val evict : t -> cpu:int -> line:int -> unit

(** [lines t] counts tracked lines (test helper). *)
val lines : t -> int

(** [reset t] forgets all sharing state. *)
val reset : t -> unit
