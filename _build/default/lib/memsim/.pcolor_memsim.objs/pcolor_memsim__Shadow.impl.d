lib/memsim/shadow.ml: Array Config Hashtbl List
