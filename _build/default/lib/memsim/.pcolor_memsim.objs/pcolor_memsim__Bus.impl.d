lib/memsim/bus.ml: Float
