lib/memsim/config.mli:
