lib/memsim/machine.mli: Bus Cache Config Mclass Tlb
