lib/memsim/mclass.mli:
