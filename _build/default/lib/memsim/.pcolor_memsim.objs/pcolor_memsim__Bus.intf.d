lib/memsim/bus.mli:
