lib/memsim/tlb.mli:
