lib/memsim/tlb.ml: Hashtbl
