lib/memsim/mclass.ml: Array List
