lib/memsim/directory.mli:
