lib/memsim/machine.ml: Array Bus Cache Config Directory Hashtbl List Mclass Option Pcolor_util Shadow Tlb
