lib/memsim/shadow.mli: Config
