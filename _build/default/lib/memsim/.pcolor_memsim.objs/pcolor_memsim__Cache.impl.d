lib/memsim/cache.ml: Array Config List Pcolor_util
