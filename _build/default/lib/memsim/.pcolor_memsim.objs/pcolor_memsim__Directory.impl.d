lib/memsim/directory.ml: Hashtbl Pcolor_util
