lib/memsim/config.ml: Float Pcolor_util Printf
