bench/extensions.ml: Config Harness List Pcolor Printf Report Run Spec Table
