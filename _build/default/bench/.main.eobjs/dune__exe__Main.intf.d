bench/main.mli:
