bench/figures.ml: Array Harness Hashtbl List Option Pcolor Printf Report Run Spec String Table
