bench/harness.ml: Hashtbl Pcolor Printf String Sys Unix
