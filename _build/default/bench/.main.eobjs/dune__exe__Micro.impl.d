bench/micro.ml: Analyze Bechamel Benchmark Harness Hashtbl Instance List Measure Pcolor Printf Staged Test Time Toolkit
