bench/main.ml: Array Extensions Figures Harness Hashtbl List Micro Printf String Sys Unix
