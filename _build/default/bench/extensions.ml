(* Extension studies beyond the paper's evaluation:

   1. an ablation of the CDPC algorithm's steps (what do set ordering,
      segment ordering and cyclic rotation each contribute?);
   2. the §2.1 dynamic recoloring policy the paper cites as unstudied
      on multiprocessors, with its copy/TLB-shootdown costs charged. *)

open Harness
module Colorer = Pcolor.Cdpc.Colorer

let run_with ?(policy = cdpc) ?(ablation = Colorer.full_algorithm) ~bench ~n_cpus () =
  let d = Spec.find bench in
  let cfg = machine_cfg Sgi ~n_cpus in
  Run.run
    {
      (Run.default_setup ~cfg ~make_program:(fun () -> d.build ~scale ()) ~policy) with
      cdpc_ablation = ablation;
    }

let ablation () =
  section "Extension A: ablation of the CDPC algorithm steps";
  let variants =
    [
      ("full algorithm", Colorer.full_algorithm);
      ("no set clustering (step 2): VA order", { Colorer.full_algorithm with set_ordering = false });
      ("no segment ordering (step 3)", { Colorer.full_algorithm with segment_ordering = false });
      ("no cyclic rotation (step 4)", { Colorer.full_algorithm with rotation = false });
      ( "pages in VA order (2+3+4 off)",
        { Colorer.set_ordering = false; segment_ordering = false; rotation = false } );
    ]
  in
  let benches = [ "tomcatv"; "swim"; "hydro2d" ] in
  let n_cpus = 16 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "wall cycles x 1e6 at %d CPUs (slowdown vs full CDPC; conflicts)" n_cpus)
      ("variant" :: benches)
  in
  let full =
    List.map (fun b -> (b, (run_with ~bench:b ~n_cpus ()).Run.report)) benches
  in
  List.iter
    (fun (name, ablation) ->
      Table.add_row t
        (name
        :: List.map
             (fun b ->
               let r = (run_with ~ablation ~bench:b ~n_cpus ()).Run.report in
               let f = List.assoc b full in
               Printf.sprintf "%.0f (%.2fx; %.0f)" (r.Report.wall_cycles /. 1e6)
                 (r.Report.wall_cycles /. f.Report.wall_cycles)
                 (Report.conflict_misses r))
             benches))
    variants;
  Table.print t;
  note "reading: a slowdown >1 means the disabled step was contributing; the round-robin";
  note "color assignment (step 5) alone already spreads each CPU's pages, so single-step";
  note "ablations are modest — the paper's gains come from the composition."

let dynamic () =
  section "Extension B: dynamic page recoloring (the paper's §2.1 open question)";
  let benches = [ "tomcatv"; "swim"; "hydro2d" ] in
  let n_cpus = 16 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "wall cycles x 1e6 at %d CPUs: static PC vs dynamic recoloring vs CDPC" n_cpus)
      [ "benchmark"; "page-coloring"; "dynamic(pc)"; "recolorings"; "cdpc" ]
  in
  List.iter
    (fun bench ->
      let pc = (run_with ~policy:Run.Page_coloring ~bench ~n_cpus ()).Run.report in
      let dyn = run_with ~policy:(Run.Dynamic_recoloring { base = `Page_coloring }) ~bench ~n_cpus () in
      let cd = (run_with ~bench ~n_cpus ()).Run.report in
      Table.add_row t
        [
          bench;
          Printf.sprintf "%.0f" (pc.Report.wall_cycles /. 1e6);
          Printf.sprintf "%.0f (%.2fx)" (dyn.Run.report.Report.wall_cycles /. 1e6)
            (pc.Report.wall_cycles /. dyn.Run.report.Report.wall_cycles);
          string_of_int dyn.Run.recolorings;
          Printf.sprintf "%.0f (%.2fx)" (cd.Report.wall_cycles /. 1e6)
            (pc.Report.wall_cycles /. cd.Report.wall_cycles);
        ])
    benches;
  Table.print t;
  note "reading: reactive recoloring recovers part of CDPC's benefit but pays copy and";
  note "TLB-shootdown costs on every repair and can only fix conflicts after they have";
  note "already hurt — consistent with the paper's §2.1 skepticism about multiprocessor";
  note "dynamic policies, and showing why the compiler-directed static approach wins."

(* How the CDPC-vs-page-coloring gain depends on the scale divisor: the
   color space shrinks with the cache, so the crossover where CDPC
   starts winning shifts to higher CPU counts at deeper scales.  This
   quantifies the main documented deviation from the paper (see
   EXPERIMENTS.md). *)
let scale_sensitivity () =
  section "Extension C: scale sensitivity of the CDPC gain (tomcatv)";
  let scales = if scale = 1 then [ 1; 4; 16 ] else [ 4; 16; 64 ] in
  let t =
    Table.create ~title:"CDPC speedup over page coloring, by scale divisor and CPU count"
      ("scale (colors)" :: List.map string_of_int [ 2; 4; 8; 16 ])
  in
  List.iter
    (fun sc ->
      let d = Spec.find "tomcatv" in
      let row =
        List.map
          (fun n_cpus ->
            let cfg = Config.scale (Config.sgi_base ~n_cpus ()) sc in
            let run policy =
              (Run.run (Run.default_setup ~cfg ~make_program:(fun () -> d.build ~scale:sc ()) ~policy))
                .Run.report
            in
            let pc = run Run.Page_coloring and cd = run cdpc in
            Table.fcell (Report.speedup ~base:pc cd))
          [ 2; 4; 8; 16 ]
      in
      let colors = Config.n_colors (Config.scale (Config.sgi_base ~n_cpus:2 ()) sc) in
      Table.add_row t (Printf.sprintf "1/%d (%d)" sc colors :: row))
    scales;
  Table.print t;
  note "reading: with more colors (shallower scale) the sparse-access pathology bites at";
  note "fewer CPUs, moving the CDPC crossover toward the paper's 2-processor onset."

let run () =
  ablation ();
  dynamic ();
  scale_sensitivity ()
