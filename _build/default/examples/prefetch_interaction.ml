(* CDPC x prefetching interaction (Section 6.2): reproduce the paper's
   tomcatv observation that the two techniques are complementary —
   "taken individually, CDPC and prefetching each accelerate
   performance by 29% and 24%, respectively — when combined, however,
   they yield a total speedup of 88%" (tomcatv, 4 CPUs).

   Run with:  dune exec examples/prefetch_interaction.exe [-- scale cpus] *)

module Run = Pcolor.Runtime.Run
module Report = Pcolor.Stats.Report

let () =
  let scale = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let n_cpus = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8 in
  let bench = Pcolor.Workloads.Spec.find "tomcatv" in
  let cfg = Pcolor.Memsim.Config.scale (Pcolor.Memsim.Config.sgi_base ~n_cpus ()) scale in
  let run ~policy ~prefetch =
    (Run.run
       { (Run.default_setup ~cfg ~make_program:(fun () -> bench.build ~scale ()) ~policy) with prefetch })
      .report
  in
  let cdpc = Run.Cdpc { fallback = `Page_coloring; via_touch = false } in
  Printf.printf "tomcatv on %s, %d CPUs (scale 1/%d)\n\n" cfg.name n_cpus scale;
  let base = run ~policy:Run.Page_coloring ~prefetch:false in
  let cases =
    [
      ("page coloring (baseline)", base);
      ("cdpc alone", run ~policy:cdpc ~prefetch:false);
      ("prefetch alone", run ~policy:Run.Page_coloring ~prefetch:true);
      ("cdpc + prefetch", run ~policy:cdpc ~prefetch:true);
    ]
  in
  List.iter
    (fun (name, (r : Report.t)) ->
      Printf.printf "%-26s wall %.3e  MCPI %5.2f  speedup %.2fx  (pf issued %.0f, useful %.0f, dropped %.0f)\n"
        name r.wall_cycles r.mcpi (Report.speedup ~base r) r.pf_issued r.pf_useful r.pf_dropped)
    cases;
  let s_of name = Report.speedup ~base (List.assoc name cases) in
  Printf.printf
    "\ncomplementarity: combined %.2fx vs individual %.2fx / %.2fx — prefetching hides the\n\
     misses CDPC cannot remove, and CDPC keeps prefetched lines from being displaced\n\
     while freeing the bus bandwidth prefetching needs.\n"
    (s_of "cdpc + prefetch") (s_of "cdpc alone") (s_of "prefetch alone")
