(* Using the library on your own kernel and machine: a blocked matrix
   multiply, swept over external-cache associativity and page-mapping
   policy.  This is the "downstream user" workflow: declare arrays and
   loop nests, let the compiler analyses derive the summaries, and ask
   the runner for reports.

   Run with:  dune exec examples/matmul_tuning.exe *)

module Ir = Pcolor.Comp.Ir
module Gen = Pcolor.Workloads.Gen
module Run = Pcolor.Runtime.Run
module Report = Pcolor.Stats.Report
module Config = Pcolor.Memsim.Config

(* C += A * B with the i-loop distributed: each CPU owns a row band of A
   and C and streams all of B.  B's pages are shared by every CPU — a
   uniform access set with the full processor set, which CDPC places
   between the private bands. *)
let make_program () =
  let c = Gen.ctx () in
  let n = 192 in
  let a = Gen.arr2 c "A" ~rows:n ~cols:n in
  let b = Gen.arr2 c "B" ~rows:n ~cols:n in
  let cm = Gen.arr2 c "C" ~rows:n ~cols:n in
  (* loop (i, k, j): C[i][j] += A[i][k] * B[k][j] *)
  let mm =
    Ir.make_nest ~label:"matmul" ~kind:Gen.parallel_even ~bounds:[| n; n; n |]
      ~refs:
        [
          Ir.ref_to a ~coeffs:[| n; 1; 0 |] ~offset:0 ~write:false;
          Ir.ref_to b ~coeffs:[| 0; n; 1 |] ~offset:0 ~write:false;
          Ir.ref_to cm ~coeffs:[| n; 0; 1 |] ~offset:0 ~write:true;
        ]
      ~body_instr:4 ()
  in
  Gen.program c ~name:"matmul"
    ~phases:[ { Ir.pname = "mm"; nests = [ mm ] } ]
    ~steady:[ (0, 4) ] ()

let () =
  let n_cpus = 8 in
  Printf.printf "blocked matmul, %d CPUs: policy x associativity sweep\n\n" n_cpus;
  let t =
    Pcolor.Util.Table.create ~title:"MCPI (conflict misses)"
      [ "policy"; "direct-mapped"; "2-way"; "4-way" ]
  in
  List.iter
    (fun (pname, policy) ->
      let cells =
        List.map
          (fun assoc ->
            let base = Config.scale (Config.sgi_base ~n_cpus ()) 16 in
            let cfg = Config.validate { base with l2 = { base.l2 with assoc } } in
            let r = (Run.run (Run.default_setup ~cfg ~make_program ~policy)).report in
            Printf.sprintf "%.2f (%.0f)" r.mcpi (Report.conflict_misses r))
          [ 1; 2; 4 ]
      in
      Pcolor.Util.Table.add_row t (pname :: cells))
    [
      ("page-coloring", Run.Page_coloring);
      ("bin-hopping", Run.Bin_hopping);
      ("cdpc", Run.Cdpc { fallback = `Page_coloring; via_touch = false });
    ];
  Pcolor.Util.Table.print t;
  print_endline "Higher associativity absorbs conflicts the mapping policy leaves behind;";
  print_endline "CDPC gets a direct-mapped cache close to the set-associative numbers."
