(* Figure 4 walkthrough: runs the CDPC algorithm on the paper's worked
   example — two data structures partitioned across two CPUs — and
   prints every intermediate step: the uniform access segments, the
   ordering of the access sets, the cyclic rotations, and the final
   page -> color hints.

   Run with:  dune exec examples/cdpc_walkthrough.exe *)

module Ir = Pcolor.Comp.Ir
module Gen = Pcolor.Workloads.Gen
module Segment = Pcolor.Cdpc.Segment
module Order = Pcolor.Cdpc.Order
module Colorer = Pcolor.Cdpc.Colorer

let () =
  let n_cpus = 2 in
  let cfg = Pcolor.Memsim.Config.validate
      {
        (Pcolor.Memsim.Config.sgi_base ~n_cpus ()) with
        name = "fig4";
        page_size = 4096;
        l2 = { size = 4 * 4096; assoc = 1; line = 128 }; (* 4 colors, as in Figure 4 *)
      }
  in
  Printf.printf "machine: %d CPUs, %d colors (cache %d KB / page %d KB)\n\n" n_cpus
    (Pcolor.Memsim.Config.n_colors cfg)
    (cfg.l2.size / 1024) (cfg.page_size / 1024);

  (* two structures, each 8 pages, row-partitioned over the 2 CPUs with a
     one-row halo so a shared segment appears between the halves *)
  let c = Gen.ctx () in
  let rows = 16 and cols = 2048 in
  let a = Gen.arr2 c "A" ~rows ~cols in
  let b = Gen.arr2 c "B" ~rows ~cols in
  let nest =
    Ir.make_nest ~label:"sweep" ~kind:Gen.parallel_even
      ~bounds:[| rows - 2; cols - 2 |]
      ~refs:
        [
          Gen.interior2 a ~di:(-1) ~dj:0 ~write:false;
          Gen.interior2 a ~di:1 ~dj:0 ~write:false;
          Gen.interior2 b ~di:0 ~dj:0 ~write:true;
        ]
      ()
  in
  let p =
    Gen.program c ~name:"fig4" ~phases:[ { Ir.pname = "sweep"; nests = [ nest ] } ]
      ~steady:[ (0, 2) ] ()
  in
  let summary = Pcolor.Comp.Summary.extract ~page_size:cfg.page_size p in
  ignore (Pcolor.Cdpc.Align.layout ~cfg ~mode:Pcolor.Cdpc.Align.Aligned ~groups:summary.groups p.arrays);

  Printf.printf "== compiler summary (Section 5.1) ==\n";
  Format.printf "%a@.@." Pcolor.Comp.Summary.pp summary;

  Printf.printf "== step 1: uniform access segments ==\n";
  let { Segment.segments; excluded } = Segment.compute ~summary ~program:p ~n_cpus in
  let segments = Segment.coalesce segments in
  List.iter (fun s -> Format.printf "  %a@." Segment.pp s) segments;
  Printf.printf "  (%d arrays excluded)\n\n" (List.length excluded);

  Printf.printf "== step 2: order the uniform access sets ==\n";
  let masks = List.sort_uniq compare (List.map (fun s -> s.Segment.cpus) segments) in
  let ordered = Order.order_sets masks in
  Printf.printf "  input sets: %s\n"
    (String.concat " " (List.map (Printf.sprintf "{%x}") masks));
  Printf.printf "  path order: %s  (shared pages between private pages, Fig 4b)\n\n"
    (String.concat " -> " (List.map (Printf.sprintf "{%x}") ordered));

  Printf.printf "== steps 3-5: segment order, cyclic rotation, colors ==\n";
  let hints, info = Colorer.generate ~cfg ~summary ~program:p ~n_cpus in
  Format.printf "%a@." Colorer.pp_placement info;

  Printf.printf "\n== final hints (page -> color) ==\n  ";
  let pairs = ref [] in
  Pcolor.Vm.Hints.iter hints (fun ~vpage ~color -> pairs := (vpage, color) :: !pairs);
  List.iter
    (fun (vp, col) -> Printf.printf "%d:%d " vp col)
    (List.sort compare !pairs);
  print_newline ();

  Printf.printf "\n== per-CPU color spread (objective 1) ==\n";
  for cpu = 0 to n_cpus - 1 do
    let pages, distinct, worst = Colorer.per_cpu_color_spread info ~cpu in
    Printf.printf "  cpu%d: %d pages over %d distinct colors (max %d pages on one color)\n" cpu
      pages distinct worst
  done
