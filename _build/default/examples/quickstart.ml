(* Quickstart: build a small parallel stencil program, run it under the
   operating system's standard page coloring and under compiler-directed
   page coloring, and compare the memory behaviour.

   Run with:  dune exec examples/quickstart.exe *)

module Ir = Pcolor.Comp.Ir
module Gen = Pcolor.Workloads.Gen
module Run = Pcolor.Runtime.Run
module Report = Pcolor.Stats.Report

(* A 5-point Jacobi relaxation over four equal 2-D grids — the shape
   that gets commodity OS page mapping into trouble: equal array sizes
   mean equal cache color phases. *)
let make_program () =
  let c = Gen.ctx () in
  let n = 257 in
  let grid name = Gen.arr2 c name ~rows:n ~cols:n in
  let a = grid "A" and b = grid "B" and rhs = grid "RHS" and tmp = grid "TMP" in
  let relax =
    Ir.make_nest ~label:"relax" ~kind:Gen.parallel_even
      ~bounds:[| n - 2; n - 2 |]
      ~refs:
        [
          Gen.interior2 a ~di:0 ~dj:0 ~write:false;
          Gen.interior2 a ~di:(-1) ~dj:0 ~write:false;
          Gen.interior2 a ~di:1 ~dj:0 ~write:false;
          Gen.interior2 a ~di:0 ~dj:(-1) ~write:false;
          Gen.interior2 a ~di:0 ~dj:1 ~write:false;
          Gen.interior2 rhs ~di:0 ~dj:0 ~write:false;
          Gen.interior2 b ~di:0 ~dj:0 ~write:true;
        ]
      ~body_instr:10 ()
  in
  let copy_back =
    Ir.make_nest ~label:"copy" ~kind:Gen.parallel_even
      ~bounds:[| n - 2; n - 2 |]
      ~refs:
        [
          Gen.interior2 b ~di:0 ~dj:0 ~write:false;
          Gen.interior2 tmp ~di:0 ~dj:0 ~write:true;
          Gen.interior2 a ~di:0 ~dj:0 ~write:true;
        ]
      ~body_instr:6 ()
  in
  Gen.program c ~name:"jacobi4"
    ~phases:
      [ { Ir.pname = "relax"; nests = [ relax ] }; { Ir.pname = "copy"; nests = [ copy_back ] } ]
    ~steady:[ (0, 50); (1, 50) ]
    ()

let () =
  let n_cpus = 8 in
  (* the paper's SGI-like machine, scaled 4x down together with the data *)
  let cfg = Pcolor.Memsim.Config.scale (Pcolor.Memsim.Config.sgi_base ~n_cpus ()) 4 in
  Printf.printf "machine: %s, %d CPUs, %d page colors\n\n" cfg.name n_cpus
    (Pcolor.Memsim.Config.n_colors cfg);
  let run policy =
    (Run.run (Run.default_setup ~cfg ~make_program ~policy)).report
  in
  let pc = run Run.Page_coloring in
  let cdpc = run (Run.Cdpc { fallback = `Page_coloring; via_touch = false }) in
  List.iter
    (fun r ->
      Format.printf "%a@.@." Report.pp r)
    [ pc; cdpc ];
  Printf.printf "CDPC speedup over page coloring: %.2fx\n" (Report.speedup ~base:pc cdpc);
  Printf.printf "conflict misses: %.0f -> %.0f\n"
    (Report.conflict_misses pc) (Report.conflict_misses cdpc)
