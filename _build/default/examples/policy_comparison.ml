(* Policy comparison: sweep the four page-mapping policies over the
   swim kernel for 1-8 CPUs — the motivating experiment of the paper's
   introduction ("neither existing page mapping policy dominates the
   other. However, our technique consistently outperforms both").

   Run with:  dune exec examples/policy_comparison.exe [-- scale]   *)

module Run = Pcolor.Runtime.Run
module Report = Pcolor.Stats.Report
module Table = Pcolor.Util.Table

let () =
  let scale = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 16 in
  let bench = Pcolor.Workloads.Spec.find "swim" in
  let policies =
    [
      Run.Page_coloring;
      Run.Bin_hopping;
      Run.Random_colors;
      Run.Cdpc { fallback = `Page_coloring; via_touch = false };
    ]
  in
  let table =
    Table.create ~title:(Printf.sprintf "swim, scale 1/%d: wall cycles (and MCPI)" scale)
      ("policy" :: List.map (fun p -> Printf.sprintf "%d cpu" p) [ 1; 2; 4; 8 ])
  in
  List.iter
    (fun policy ->
      let cells =
        List.map
          (fun n_cpus ->
            let cfg = Pcolor.Memsim.Config.scale (Pcolor.Memsim.Config.sgi_base ~n_cpus ()) scale in
            let r =
              (Run.run (Run.default_setup ~cfg ~make_program:(fun () -> bench.build ~scale ()) ~policy))
                .report
            in
            Printf.sprintf "%.2e (%.2f)" r.wall_cycles r.mcpi)
          [ 1; 2; 4; 8 ]
      in
      Table.add_row table (Run.policy_name policy :: cells))
    policies;
  Table.print table;
  print_endline "Lower is better. CDPC should match or beat the best static policy per column.";
  print_endline "(Use scale 4 for the paper-regime geometry; it runs for a few minutes.)"
