examples/prefetch_interaction.ml: Array List Pcolor Printf Sys
