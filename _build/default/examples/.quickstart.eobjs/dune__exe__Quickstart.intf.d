examples/quickstart.mli:
