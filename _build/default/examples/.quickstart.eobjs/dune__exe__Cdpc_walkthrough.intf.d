examples/cdpc_walkthrough.mli:
