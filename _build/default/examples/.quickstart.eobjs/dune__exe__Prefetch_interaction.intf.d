examples/prefetch_interaction.mli:
