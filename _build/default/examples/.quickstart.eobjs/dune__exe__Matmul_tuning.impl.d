examples/matmul_tuning.ml: List Pcolor Printf
