examples/quickstart.ml: Format List Pcolor Printf
