examples/cdpc_walkthrough.ml: Format List Pcolor Printf String
