examples/policy_comparison.ml: Array List Pcolor Printf Sys
